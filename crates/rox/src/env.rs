//! The per-query run-time environment: a thin view over the engine's
//! shared caches.
//!
//! A Join Graph vertex denotes a relation of XML nodes ("all elements named
//! q", "all text nodes with value = x", ...). The environment resolves each
//! vertex to its **base list** — the index lookup of §2.2 — lazily and
//! caches it. Base-list *counts* are what Phase 1 of Algorithm 1 seeds
//! `card(v)` with; base-list *samples* seed `S(v)`.
//!
//! Since the engine split ([`crate::engine`]), a `RoxEnv` owns no heavy
//! state of its own: the [`IndexedStore`] and the cross-query
//! [`BaseListCache`] are `Arc`-shared — either with a long-lived
//! [`RoxEngine`](crate::engine::RoxEngine)
//! (`engine.session(graph)`) or freshly created for a standalone one-shot
//! environment ([`RoxEnv::new`]). What *is* per query: the vertex →
//! document resolution and a vertex-indexed fast path onto the shared
//! base lists, so the hot `card(v)`/`table_or_base(v)` calls of the
//! sampling loop skip the shared cache's key hashing.

use crate::engine::BaseListCache;
use rox_index::IndexedStore;
use rox_joingraph::{JoinGraph, VertexId, VertexLabel};
use rox_ops::ScratchPool;
use rox_par::{Parallelism, WorkerPool};
use rox_xmldb::{Catalog, DocId, Document, NodeKind, Pre};
use std::sync::{Arc, RwLock};

/// Resolved, cached run-time context for one Join Graph over one catalog.
pub struct RoxEnv {
    store: Arc<IndexedStore>,
    /// Cross-query base lists, keyed `(DocId, VertexLabel)` — shared with
    /// the owning engine (or private to this env when standalone).
    shared_lists: Arc<BaseListCache>,
    /// vertex → document id (resolved from the vertex URI).
    vertex_doc: Vec<DocId>,
    /// vertex → base list, the per-query fast path onto `shared_lists`
    /// (saves re-keying the label on every `card`/`table_or_base` call).
    vertex_lists: RwLock<Vec<Option<Arc<Vec<Pre>>>>>,
    /// Recycled execution-spine buffers — shared with the owning engine
    /// (so a warm repeat query leases what the previous one returned) or
    /// private to a standalone env.
    pool: Arc<ScratchPool>,
    /// Default worker-thread budget for full edge executions: the
    /// partitioned staircase/hash joins in [`crate::state`] split their
    /// probe inputs into morsels when this allows more than one thread.
    /// Fixed at construction — per-run overrides go through
    /// [`crate::RoxOptions::parallelism`] and
    /// [`crate::run_plan_with_env_parallel`], so a shared engine never
    /// needs `&mut` access.
    parallelism: Parallelism,
    /// The worker pool full edge executions fan out on — the owning
    /// engine's always-on pool, or `None` for standalone environments
    /// (which run on the process-shared pool).
    workers: Option<Arc<WorkerPool>>,
}

/// An environment construction error (unknown document, ...).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnvError {
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for EnvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "environment error: {}", self.message)
    }
}

impl std::error::Error for EnvError {}

impl std::fmt::Debug for RoxEnv {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RoxEnv")
            .field("vertices", &self.vertex_doc.len())
            .finish()
    }
}

impl RoxEnv {
    /// Resolve every vertex of `graph` against `catalog` (sequential
    /// execution; see [`RoxEnv::with_parallelism`]). The environment gets
    /// private caches; to share indexes and base lists across queries,
    /// create it through [`RoxEngine::session`](crate::RoxEngine::session)
    /// instead.
    pub fn new(catalog: Arc<Catalog>, graph: &JoinGraph) -> Result<Self, EnvError> {
        Self::with_parallelism(catalog, graph, Parallelism::Sequential)
    }

    /// As [`RoxEnv::new`] with an explicit default worker-thread budget
    /// for full edge executions.
    pub fn with_parallelism(
        catalog: Arc<Catalog>,
        graph: &JoinGraph,
        parallelism: Parallelism,
    ) -> Result<Self, EnvError> {
        Self::from_shared(
            Arc::new(IndexedStore::new(catalog)),
            Arc::new(BaseListCache::new()),
            Arc::new(ScratchPool::new()),
            None,
            graph,
            parallelism,
        )
    }

    /// The session constructor: a view over caches owned elsewhere (the
    /// engine). Everything vertex-scoped is built fresh; everything
    /// document-scoped is shared.
    pub(crate) fn from_shared(
        store: Arc<IndexedStore>,
        shared_lists: Arc<BaseListCache>,
        pool: Arc<ScratchPool>,
        workers: Option<Arc<WorkerPool>>,
        graph: &JoinGraph,
        parallelism: Parallelism,
    ) -> Result<Self, EnvError> {
        let mut vertex_doc = Vec::with_capacity(graph.vertex_count());
        for v in graph.vertices() {
            let id = store
                .catalog()
                .resolve(&v.doc_uri)
                .ok_or_else(|| EnvError {
                    message: format!("document '{}' is not loaded", v.doc_uri),
                })?;
            vertex_doc.push(id);
        }
        Ok(RoxEnv {
            store,
            shared_lists,
            vertex_lists: RwLock::new(vec![None; vertex_doc.len()]),
            vertex_doc,
            parallelism,
            pool,
            workers,
        })
    }

    /// The default worker-thread budget for full edge executions.
    pub fn parallelism(&self) -> Parallelism {
        self.parallelism
    }

    /// The scratch pool full edge executions lease their buffers from.
    pub fn pool(&self) -> &ScratchPool {
        &self.pool
    }

    /// The worker pool intra-query fan-outs (sampling, partitioned joins)
    /// run on: the owning engine's pool, or the process-shared one for
    /// standalone environments.
    pub fn workers(&self) -> &WorkerPool {
        self.workers
            .as_deref()
            .unwrap_or_else(|| WorkerPool::shared())
    }

    /// The indexed store.
    pub fn store(&self) -> &IndexedStore {
        &self.store
    }

    /// The document a vertex lives in.
    pub fn doc_id(&self, v: VertexId) -> DocId {
        self.vertex_doc[v as usize]
    }

    /// The document a vertex lives in (loaded).
    pub fn doc(&self, v: VertexId) -> Arc<Document> {
        self.store.doc(self.doc_id(v))
    }

    /// The node kind a vertex's nodes have (for value-join index probes).
    pub fn vertex_kind(label: &VertexLabel) -> NodeKind {
        match label {
            VertexLabel::Root => NodeKind::Document,
            VertexLabel::Element(_) => NodeKind::Element,
            VertexLabel::Text(_) => NodeKind::Text,
            VertexLabel::Attribute(..) => NodeKind::Attribute,
        }
    }

    /// The base list of a vertex: all nodes satisfying its annotation, from
    /// the cheapest index path, sorted on pre. Cached per `(document,
    /// label)` in the shared cache — a repeat of the same vertex shape in
    /// *any* later query reuses it — with a per-vertex fast path in this
    /// env.
    pub fn base_list(&self, graph: &JoinGraph, v: VertexId) -> Arc<Vec<Pre>> {
        if let Some(cached) = &self.vertex_lists.read().expect("base list cache")[v as usize] {
            return Arc::clone(cached);
        }
        let doc_id = self.doc_id(v);
        let label = &graph.vertex(v).label;
        let list = self
            .shared_lists
            .get_or_build(doc_id, label, || self.build_base_list(doc_id, label));
        self.vertex_lists.write().expect("base list cache")[v as usize] = Some(Arc::clone(&list));
        list
    }

    /// The uncached index lookup behind [`RoxEnv::base_list`] — depends
    /// only on the document and the label, which is what makes the
    /// `(DocId, VertexLabel)` cache key sound.
    fn build_base_list(&self, doc_id: DocId, label: &VertexLabel) -> Vec<Pre> {
        let doc = self.store.doc(doc_id);
        let idx = self.store.indexes(doc_id);
        match label {
            VertexLabel::Root => vec![0],
            VertexLabel::Element(name) => match doc.interner().get(name) {
                Some(sym) => idx.element.lookup(sym).to_vec(),
                None => Vec::new(),
            },
            VertexLabel::Text(None) => idx.element.text_nodes().to_vec(),
            VertexLabel::Text(Some(pred)) => idx.value.select_text(&doc, pred),
            VertexLabel::Attribute(name, pred) => {
                let by_name: Vec<Pre> = match doc.interner().get(name) {
                    Some(sym) => idx.element.lookup_attr(sym).to_vec(),
                    None => Vec::new(),
                };
                match pred {
                    None => by_name,
                    Some(p) => by_name
                        .into_iter()
                        .filter(|&a| p.matches(&doc.value_str(a)))
                        .collect(),
                }
            }
        }
    }

    /// Base-list count — the `card(v)` seed (O(1) once cached; an index
    /// count probe either way).
    pub fn base_count(&self, graph: &JoinGraph, v: VertexId) -> usize {
        self.base_list(graph, v).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rox_joingraph::compile_query;

    fn setup() -> (Arc<Catalog>, JoinGraph) {
        let cat = Arc::new(Catalog::new());
        cat.load_str(
            "d.xml",
            r#"<site><item id="1"><quantity>1</quantity></item><item id="2"><quantity>3</quantity></item></site>"#,
        )
        .unwrap();
        let g = compile_query(r#"for $i in doc("d.xml")//item[./quantity = 1] return $i"#).unwrap();
        (cat, g)
    }

    #[test]
    fn resolves_documents() {
        let (cat, g) = setup();
        let env = RoxEnv::new(cat, &g).unwrap();
        assert_eq!(env.doc_id(0), DocId(0));
    }

    #[test]
    fn unknown_document_errors() {
        let cat = Arc::new(Catalog::new());
        let g = compile_query(r#"for $i in doc("missing.xml")//item return $i"#).unwrap();
        let e = RoxEnv::new(cat, &g).unwrap_err();
        assert!(e.message.contains("missing.xml"));
    }

    #[test]
    fn base_lists_per_label() {
        let (cat, g) = setup();
        let env = RoxEnv::new(cat, &g).unwrap();
        // Find vertices by label.
        for v in g.vertices() {
            let list = env.base_list(&g, v.id);
            match &v.label {
                VertexLabel::Root => assert_eq!(&*list, &vec![0]),
                VertexLabel::Element(n) if n == "item" => assert_eq!(list.len(), 2),
                VertexLabel::Element(n) if n == "quantity" => assert_eq!(list.len(), 2),
                VertexLabel::Text(Some(_)) => assert_eq!(list.len(), 1), // "1"
                other => panic!("unexpected label {other:?}"),
            }
        }
    }

    #[test]
    fn base_list_is_cached() {
        let (cat, g) = setup();
        let env = RoxEnv::new(cat, &g).unwrap();
        let a = env.base_list(&g, 1);
        let b = env.base_list(&g, 1);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn same_shape_vertices_share_one_cached_list() {
        // Two distinct graphs against one shared cache: the (DocId, label)
        // key makes the second graph's "item" vertex hit the first's list.
        let (cat, g1) = setup();
        let g2 =
            compile_query(r#"for $x in doc("d.xml")//item, $q in $x/quantity return $q"#).unwrap();
        let store = Arc::new(IndexedStore::new(cat));
        let lists = Arc::new(BaseListCache::new());
        let pool = Arc::new(ScratchPool::new());
        let env1 = RoxEnv::from_shared(
            Arc::clone(&store),
            Arc::clone(&lists),
            Arc::clone(&pool),
            None,
            &g1,
            Parallelism::Sequential,
        )
        .unwrap();
        let env2 =
            RoxEnv::from_shared(store, lists, pool, None, &g2, Parallelism::Sequential).unwrap();
        let item1 = g1.var_vertices["i"];
        let item2 = g2.var_vertices["x"];
        let a = env1.base_list(&g1, item1);
        let b = env2.base_list(&g2, item2);
        assert!(Arc::ptr_eq(&a, &b), "cross-query base list not shared");
    }

    #[test]
    fn missing_name_gives_empty_base() {
        let cat = Arc::new(Catalog::new());
        cat.load_str("d.xml", "<a/>").unwrap();
        let g = compile_query(r#"for $i in doc("d.xml")//zebra return $i"#).unwrap();
        let env = RoxEnv::new(cat, &g).unwrap();
        let zebra = g.var_vertices["i"];
        assert!(env.base_list(&g, zebra).is_empty());
        assert_eq!(env.base_count(&g, zebra), 0);
    }
}
