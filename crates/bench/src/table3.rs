//! Table 3: the generated DBLP document inventory — venue, research
//! area(s), author-tag counts at ×1 and ×scale, and document sizes.

use crate::setup::{dblp_catalog, DblpSetup};
use rox_datagen::{venue_uri, VENUES};
use rox_xmldb::serialize_document;

/// One venue row.
#[derive(Debug, Clone)]
pub struct VenueRow {
    /// Venue name.
    pub name: &'static str,
    /// Area labels ("DB", "DB IR", ...).
    pub areas: String,
    /// Table 3's target author-tag count (×1, full size factor).
    pub target_tags: usize,
    /// Generated author tags (× scale, after size factor).
    pub generated_tags: usize,
    /// Node count of the shredded document.
    pub nodes: usize,
    /// Serialized size in bytes.
    pub bytes: usize,
}

/// Output.
#[derive(Debug)]
pub struct Table3Output {
    /// One row per venue, in Table 3 order.
    pub rows: Vec<VenueRow>,
    /// Scale used.
    pub scale: usize,
    /// Size factor used.
    pub size_factor: f64,
}

/// Generate the corpus and tabulate it.
pub fn run(scale: usize, size_factor: f64, seed: u64) -> Table3Output {
    let setup: DblpSetup = dblp_catalog(scale, size_factor, seed);
    let rows = VENUES
        .iter()
        .enumerate()
        .map(|(i, v)| {
            let doc = setup
                .catalog
                .doc_by_uri(&venue_uri(i))
                .expect("venue loaded");
            let areas = match v.secondary {
                None => v.primary.label().to_string(),
                Some(s) => format!("{} {}", v.primary.label(), s.label()),
            };
            VenueRow {
                name: v.name,
                areas,
                target_tags: v.author_tags,
                generated_tags: setup.corpus.author_tags[i],
                nodes: doc.node_count(),
                bytes: serialize_document(&doc).len(),
            }
        })
        .collect();
    Table3Output {
        rows,
        scale,
        size_factor,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inventory_matches_venue_table() {
        let out = run(1, 0.02, 3);
        assert_eq!(out.rows.len(), 23);
        // Monotonicity survives shrinking: Bioinformatics is the largest.
        let max_row = out.rows.iter().max_by_key(|r| r.generated_tags).unwrap();
        assert_eq!(max_row.name, "Bioinformatics");
        for r in &out.rows {
            assert!(r.nodes > 0);
            assert!(r.bytes > 0);
        }
    }
}
