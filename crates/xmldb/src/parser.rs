//! A hand-written, dependency-free XML parser.
//!
//! The parser is event based ([`XmlEvent`]); [`parse_document`] drives it
//! into a [`DocumentBuilder`] to produce a
//! shredded [`Document`].
//!
//! Supported: elements, attributes, character data, CDATA sections,
//! comments, processing instructions, the XML declaration, a (skipped)
//! DOCTYPE, the five predefined entities and decimal/hexadecimal character
//! references. Namespaces are treated lexically (prefixes are part of the
//! qualified name), which matches how the paper's Join Graph vertices are
//! annotated with qualified names.

use crate::catalog::DocId;
use crate::doc::{Document, DocumentBuilder};
use std::fmt;
use std::sync::Arc;

/// A parse error with byte offset and line/column information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of what went wrong.
    pub message: String,
    /// Byte offset in the input where the error was detected.
    pub offset: usize,
    /// 1-based line number.
    pub line: usize,
    /// 1-based column number (in bytes).
    pub column: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "XML parse error at line {}, column {} (offset {}): {}",
            self.line, self.column, self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// A single parse event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlEvent {
    /// `<name attr="v" ...>` — `self_closing` is true for `<name/>`.
    StartElement {
        /// Qualified element name.
        name: String,
        /// Attributes in document order.
        attributes: Vec<(String, String)>,
        /// Whether the element closed itself (`<a/>`).
        self_closing: bool,
    },
    /// `</name>`.
    EndElement {
        /// Qualified element name.
        name: String,
    },
    /// Character data (entities resolved, CDATA included verbatim).
    Text(String),
    /// `<!-- ... -->`.
    Comment(String),
    /// `<?target data?>`.
    ProcessingInstruction {
        /// PI target.
        target: String,
        /// PI data (possibly empty).
        data: String,
    },
}

/// A pull parser over a UTF-8 XML input.
pub struct XmlParser<'a> {
    input: &'a [u8],
    pos: usize,
    /// Stack of open element names, used to validate nesting.
    open: Vec<String>,
    /// Set once the document element has been closed.
    root_closed: bool,
    /// Set once the document element has been seen.
    root_seen: bool,
}

impl<'a> XmlParser<'a> {
    /// Create a parser over `input`.
    pub fn new(input: &'a str) -> Self {
        XmlParser {
            input: input.as_bytes(),
            pos: 0,
            open: Vec::new(),
            root_closed: false,
            root_seen: false,
        }
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        let mut line = 1usize;
        let mut col = 1usize;
        for &b in &self.input[..self.pos.min(self.input.len())] {
            if b == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        ParseError {
            message: message.into(),
            offset: self.pos,
            line,
            column: col,
        }
    }

    #[inline]
    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    #[inline]
    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s.as_bytes())
    }

    fn eat(&mut self, s: &str) -> bool {
        if self.starts_with(s) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!(
                "expected '{}', found {}",
                b as char,
                self.peek()
                    .map(|c| format!("'{}'", c as char))
                    .unwrap_or_else(|| "end of input".into())
            )))
        }
    }

    fn read_until(&mut self, delim: &str, what: &str) -> Result<String, ParseError> {
        let start = self.pos;
        while self.pos < self.input.len() {
            if self.starts_with(delim) {
                let s = std::str::from_utf8(&self.input[start..self.pos])
                    .map_err(|_| self.error("invalid UTF-8"))?
                    .to_string();
                self.pos += delim.len();
                return Ok(s);
            }
            self.pos += 1;
        }
        Err(self.error(format!("unterminated {what}")))
    }

    fn is_name_start(b: u8) -> bool {
        b.is_ascii_alphabetic() || b == b'_' || b == b':' || b >= 0x80
    }

    fn is_name_char(b: u8) -> bool {
        Self::is_name_start(b) || b.is_ascii_digit() || b == b'-' || b == b'.'
    }

    fn read_name(&mut self) -> Result<String, ParseError> {
        let start = self.pos;
        match self.peek() {
            Some(b) if Self::is_name_start(b) => {
                self.pos += 1;
            }
            _ => return Err(self.error("expected a name")),
        }
        while let Some(b) = self.peek() {
            if Self::is_name_char(b) {
                self.pos += 1;
            } else {
                break;
            }
        }
        std::str::from_utf8(&self.input[start..self.pos])
            .map(|s| s.to_string())
            .map_err(|_| self.error("invalid UTF-8 in name"))
    }

    fn resolve_entity(&self, ent: &str) -> Result<String, ParseError> {
        Ok(match ent {
            "lt" => "<".into(),
            "gt" => ">".into(),
            "amp" => "&".into(),
            "quot" => "\"".into(),
            "apos" => "'".into(),
            _ if ent.starts_with("#x") || ent.starts_with("#X") => {
                let cp = u32::from_str_radix(&ent[2..], 16)
                    .map_err(|_| self.error(format!("bad character reference &{ent};")))?;
                char::from_u32(cp)
                    .ok_or_else(|| self.error(format!("invalid code point &{ent};")))?
                    .to_string()
            }
            _ if ent.starts_with('#') => {
                let cp = ent[1..]
                    .parse::<u32>()
                    .map_err(|_| self.error(format!("bad character reference &{ent};")))?;
                char::from_u32(cp)
                    .ok_or_else(|| self.error(format!("invalid code point &{ent};")))?
                    .to_string()
            }
            _ => return Err(self.error(format!("unknown entity &{ent};"))),
        })
    }

    /// Decode character data up to (not including) the next `<`, resolving
    /// entity and character references.
    fn read_text(&mut self) -> Result<String, ParseError> {
        let mut out = String::new();
        while let Some(b) = self.peek() {
            match b {
                b'<' => break,
                b'&' => {
                    self.pos += 1;
                    let start = self.pos;
                    while self.peek().map(|c| c != b';').unwrap_or(false) {
                        self.pos += 1;
                    }
                    if self.peek() != Some(b';') {
                        return Err(self.error("unterminated entity reference"));
                    }
                    let ent = std::str::from_utf8(&self.input[start..self.pos])
                        .map_err(|_| self.error("invalid UTF-8 in entity"))?
                        .to_string();
                    self.pos += 1; // ';'
                    out.push_str(&self.resolve_entity(&ent)?);
                }
                _ => {
                    let start = self.pos;
                    while let Some(c) = self.peek() {
                        if c == b'<' || c == b'&' {
                            break;
                        }
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.input[start..self.pos])
                            .map_err(|_| self.error("invalid UTF-8 in text"))?,
                    );
                }
            }
        }
        Ok(out)
    }

    fn read_attribute_value(&mut self) -> Result<String, ParseError> {
        let quote = match self.bump() {
            Some(q @ (b'"' | b'\'')) => q,
            _ => return Err(self.error("expected quoted attribute value")),
        };
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated attribute value")),
                Some(q) if q == quote => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'&') => {
                    self.pos += 1;
                    let start = self.pos;
                    while self.peek().map(|c| c != b';').unwrap_or(false) {
                        self.pos += 1;
                    }
                    if self.peek() != Some(b';') {
                        return Err(self.error("unterminated entity reference"));
                    }
                    let ent = std::str::from_utf8(&self.input[start..self.pos])
                        .map_err(|_| self.error("invalid UTF-8 in entity"))?
                        .to_string();
                    self.pos += 1;
                    out.push_str(&self.resolve_entity(&ent)?);
                }
                Some(b'<') => return Err(self.error("'<' not allowed in attribute value")),
                Some(_) => {
                    let start = self.pos;
                    while let Some(c) = self.peek() {
                        if c == quote || c == b'&' || c == b'<' {
                            break;
                        }
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.input[start..self.pos])
                            .map_err(|_| self.error("invalid UTF-8 in attribute"))?,
                    );
                }
            }
        }
    }

    /// Pull the next event; `Ok(None)` signals a well-formed end of input.
    pub fn next_event(&mut self) -> Result<Option<XmlEvent>, ParseError> {
        loop {
            if self.pos >= self.input.len() {
                if !self.open.is_empty() {
                    return Err(
                        self.error(format!("unclosed element <{}>", self.open.last().unwrap()))
                    );
                }
                if !self.root_seen {
                    return Err(self.error("document has no root element"));
                }
                return Ok(None);
            }
            if self.peek() != Some(b'<') {
                let text = self.read_text()?;
                if self.open.is_empty() {
                    // Whitespace between top-level constructs is fine.
                    if text.trim().is_empty() {
                        continue;
                    }
                    return Err(self.error("character data outside the document element"));
                }
                return Ok(Some(XmlEvent::Text(text)));
            }
            // A markup construct.
            if self.eat("<!--") {
                let body = self.read_until("-->", "comment")?;
                return Ok(Some(XmlEvent::Comment(body)));
            }
            if self.eat("<![CDATA[") {
                if self.open.is_empty() {
                    return Err(self.error("CDATA outside the document element"));
                }
                let body = self.read_until("]]>", "CDATA section")?;
                return Ok(Some(XmlEvent::Text(body)));
            }
            if self.starts_with("<!DOCTYPE") {
                self.skip_doctype()?;
                continue;
            }
            if self.eat("<?") {
                let target = self.read_name()?;
                self.skip_whitespace();
                let data = self.read_until("?>", "processing instruction")?;
                if target.eq_ignore_ascii_case("xml") {
                    // XML declaration — not reported as an event.
                    continue;
                }
                return Ok(Some(XmlEvent::ProcessingInstruction {
                    target,
                    data: data.trim_end().to_string(),
                }));
            }
            if self.eat("</") {
                let name = self.read_name()?;
                self.skip_whitespace();
                self.expect(b'>')?;
                match self.open.pop() {
                    Some(expected) if expected == name => {}
                    Some(expected) => {
                        return Err(self.error(format!(
                            "mismatched closing tag </{name}>, expected </{expected}>"
                        )))
                    }
                    None => {
                        return Err(
                            self.error(format!("closing tag </{name}> with no open element"))
                        )
                    }
                }
                if self.open.is_empty() {
                    self.root_closed = true;
                }
                return Ok(Some(XmlEvent::EndElement { name }));
            }
            // Start tag.
            self.expect(b'<')?;
            if self.root_closed {
                return Err(self.error("content after the document element"));
            }
            let name = self.read_name()?;
            let mut attributes = Vec::new();
            loop {
                self.skip_whitespace();
                match self.peek() {
                    Some(b'>') => {
                        self.pos += 1;
                        self.open.push(name.clone());
                        self.root_seen = true;
                        return Ok(Some(XmlEvent::StartElement {
                            name,
                            attributes,
                            self_closing: false,
                        }));
                    }
                    Some(b'/') => {
                        self.pos += 1;
                        self.expect(b'>')?;
                        self.root_seen = true;
                        if self.open.is_empty() {
                            self.root_closed = true;
                        }
                        return Ok(Some(XmlEvent::StartElement {
                            name,
                            attributes,
                            self_closing: true,
                        }));
                    }
                    Some(b) if Self::is_name_start(b) => {
                        let attr_name = self.read_name()?;
                        self.skip_whitespace();
                        self.expect(b'=')?;
                        self.skip_whitespace();
                        let value = self.read_attribute_value()?;
                        if attributes.iter().any(|(n, _)| *n == attr_name) {
                            return Err(self.error(format!("duplicate attribute '{attr_name}'")));
                        }
                        attributes.push((attr_name, value));
                    }
                    _ => return Err(self.error("malformed start tag")),
                }
            }
        }
    }

    fn skip_doctype(&mut self) -> Result<(), ParseError> {
        // Skip "<!DOCTYPE ... >" allowing one level of [...] internal subset.
        self.pos += "<!DOCTYPE".len();
        let mut depth = 0usize;
        while let Some(b) = self.bump() {
            match b {
                b'[' => depth += 1,
                b']' => depth = depth.saturating_sub(1),
                b'>' if depth == 0 => return Ok(()),
                _ => {}
            }
        }
        Err(self.error("unterminated DOCTYPE"))
    }
}

/// Parse a complete XML document into a shredded [`Document`].
///
/// `uri` is recorded as the document's name (the argument of `fn:doc`).
/// Whitespace-only text nodes between elements are preserved only when
/// `keep_whitespace` is set on the builder; this convenience entry point
/// strips them, which matches how MonetDB/XQuery shreds data documents.
pub fn parse_document(uri: &str, input: &str) -> Result<Arc<Document>, ParseError> {
    parse_document_with(uri, input, false)
}

/// Like [`parse_document`] but with explicit control over whitespace-only
/// text node retention.
pub fn parse_document_with(
    uri: &str,
    input: &str,
    keep_whitespace: bool,
) -> Result<Arc<Document>, ParseError> {
    let mut parser = XmlParser::new(input);
    let mut builder = DocumentBuilder::new(uri);
    // Coalesce adjacent text (e.g. around entity references / CDATA).
    let mut pending_text: Option<String> = None;
    let flush_text = |builder: &mut DocumentBuilder, pending: &mut Option<String>| {
        if let Some(t) = pending.take() {
            if keep_whitespace || !t.trim().is_empty() {
                builder.text(&t);
            }
        }
    };
    while let Some(event) = parser.next_event()? {
        match event {
            XmlEvent::Text(t) => match &mut pending_text {
                Some(acc) => acc.push_str(&t),
                None => pending_text = Some(t),
            },
            XmlEvent::StartElement {
                name,
                attributes,
                self_closing,
            } => {
                flush_text(&mut builder, &mut pending_text);
                builder.start_element(&name);
                for (n, v) in &attributes {
                    builder.attribute(n, v);
                }
                if self_closing {
                    builder.end_element();
                }
            }
            XmlEvent::EndElement { .. } => {
                flush_text(&mut builder, &mut pending_text);
                builder.end_element();
            }
            XmlEvent::Comment(c) => {
                flush_text(&mut builder, &mut pending_text);
                builder.comment(&c);
            }
            XmlEvent::ProcessingInstruction { target, data } => {
                flush_text(&mut builder, &mut pending_text);
                builder.processing_instruction(&target, &data);
            }
        }
    }
    Ok(Arc::new(builder.finish(DocId(0))))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn events(input: &str) -> Vec<XmlEvent> {
        let mut p = XmlParser::new(input);
        let mut out = Vec::new();
        while let Some(e) = p.next_event().expect("parse ok") {
            out.push(e);
        }
        out
    }

    fn parse_err(input: &str) -> ParseError {
        let mut p = XmlParser::new(input);
        loop {
            match p.next_event() {
                Ok(Some(_)) => {}
                Ok(None) => panic!("expected a parse error for {input:?}"),
                Err(e) => return e,
            }
        }
    }

    #[test]
    fn simple_element() {
        let ev = events("<a/>");
        assert_eq!(
            ev,
            vec![XmlEvent::StartElement {
                name: "a".into(),
                attributes: vec![],
                self_closing: true
            }]
        );
    }

    #[test]
    fn nested_elements_and_text() {
        let ev = events("<a><b>hi</b></a>");
        assert_eq!(ev.len(), 5);
        assert_eq!(ev[2], XmlEvent::Text("hi".into()));
    }

    #[test]
    fn attributes_parsed_in_order() {
        let ev = events(r#"<a x="1" y='2'/>"#);
        match &ev[0] {
            XmlEvent::StartElement { attributes, .. } => {
                assert_eq!(
                    attributes,
                    &vec![
                        ("x".to_string(), "1".to_string()),
                        ("y".to_string(), "2".to_string())
                    ]
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn entities_resolved_in_text_and_attributes() {
        let ev = events(r#"<a t="&lt;&amp;&gt;">x &#65;&#x42; &quot;q&apos;</a>"#);
        match &ev[0] {
            XmlEvent::StartElement { attributes, .. } => assert_eq!(attributes[0].1, "<&>"),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(ev[1], XmlEvent::Text("x AB \"q'".into()));
    }

    #[test]
    fn cdata_is_verbatim_text() {
        let ev = events("<a><![CDATA[x < & y]]></a>");
        assert_eq!(ev[1], XmlEvent::Text("x < & y".into()));
    }

    #[test]
    fn comments_and_pis() {
        let ev = events("<a><!-- note --><?php echo?></a>");
        assert_eq!(ev[1], XmlEvent::Comment(" note ".into()));
        assert_eq!(
            ev[2],
            XmlEvent::ProcessingInstruction {
                target: "php".into(),
                data: "echo".into()
            }
        );
    }

    #[test]
    fn xml_declaration_and_doctype_skipped() {
        let ev = events("<?xml version=\"1.0\"?>\n<!DOCTYPE a [<!ELEMENT a ANY>]>\n<a/>");
        assert_eq!(ev.len(), 1);
    }

    #[test]
    fn mismatched_tags_error() {
        let e = parse_err("<a><b></a></b>");
        assert!(e.message.contains("mismatched"), "{e}");
    }

    #[test]
    fn unclosed_element_error() {
        let e = parse_err("<a><b>");
        assert!(e.message.contains("unclosed"), "{e}");
    }

    #[test]
    fn duplicate_attribute_error() {
        let e = parse_err(r#"<a x="1" x="2"/>"#);
        assert!(e.message.contains("duplicate"), "{e}");
    }

    #[test]
    fn content_after_root_error() {
        let e = parse_err("<a/><b/>");
        assert!(e.message.contains("after the document element"), "{e}");
    }

    #[test]
    fn text_outside_root_error() {
        let e = parse_err("hello<a/>");
        assert!(e.message.contains("outside"), "{e}");
    }

    #[test]
    fn error_positions_are_line_column() {
        let e = parse_err("<a>\n  <b></c>\n</a>");
        assert_eq!(e.line, 2);
        assert!(e.column > 1);
    }

    #[test]
    fn unknown_entity_error() {
        let e = parse_err("<a>&nope;</a>");
        assert!(e.message.contains("unknown entity"), "{e}");
    }

    #[test]
    fn whitespace_between_top_level_constructs_ok() {
        let ev = events("<?xml version=\"1.0\"?>\n  <a/>  \n");
        assert_eq!(ev.len(), 1);
    }
}
