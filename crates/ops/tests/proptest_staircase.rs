//! Property tests: every staircase axis implementation must agree with the
//! naive XPath axis semantics on random trees, and cut-off execution must
//! be a prefix of the full execution.

use proptest::prelude::*;
use rox_index::ElementIndex;
use rox_ops::{naive_axis, step_join, Axis, Cost};
use rox_xmldb::catalog::DocId;
use rox_xmldb::{Document, DocumentBuilder, NodeKind, Pre};

/// Generate a random document: a sequence of actions driving the builder.
fn doc_strategy() -> impl Strategy<Value = Document> {
    // Action stream: 0 = open element, 1 = close, 2 = text, 3 = attribute.
    prop::collection::vec((0u8..4, 0u8..4), 1..80).prop_map(|actions| {
        let names = ["a", "b", "c", "d"];
        let mut b = DocumentBuilder::new("prop.xml");
        let mut depth = 0usize;
        let mut attrs_ok = false;
        for (action, pick) in actions {
            match action {
                0 => {
                    b.start_element(names[pick as usize]);
                    depth += 1;
                    attrs_ok = true;
                }
                1 => {
                    if depth > 0 {
                        b.end_element();
                        depth -= 1;
                        attrs_ok = false;
                    }
                }
                2 => {
                    if depth > 0 {
                        b.text(&format!("t{pick}"));
                        attrs_ok = false;
                    }
                }
                _ => {
                    if depth > 0 && attrs_ok {
                        // Builder forbids duplicate-free checking here; use
                        // distinct names per pick to stay well-formed
                        // often enough (duplicates across siblings are fine).
                        b.attribute(names[pick as usize], "v");
                        // keep attrs_ok: multiple attributes allowed; the
                        // builder panics only on attribute-after-content.
                    }
                }
            }
        }
        while depth > 0 {
            b.end_element();
            depth -= 1;
        }
        b.finish(DocId(0))
    })
}

const AXES: [Axis; 12] = [
    Axis::Child,
    Axis::Descendant,
    Axis::DescendantOrSelf,
    Axis::Parent,
    Axis::Ancestor,
    Axis::AncestorOrSelf,
    Axis::Following,
    Axis::Preceding,
    Axis::FollowingSibling,
    Axis::PrecedingSibling,
    Axis::SelfAxis,
    Axis::Attribute,
];

fn axis_strategy() -> impl Strategy<Value = Axis> {
    prop::sample::select(AXES.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn staircase_agrees_with_naive(doc in doc_strategy(), axis in axis_strategy(), seed in 0u64..1000) {
        let idx = ElementIndex::build(&doc);
        // Context: a pseudo-random subset of elements (plus attrs/text for
        // some axes — keep to elements + text for generality).
        let mut ctx_nodes: Vec<Pre> = idx
            .elements()
            .iter()
            .chain(idx.text_nodes())
            .copied()
            .filter(|p| (p.wrapping_mul(2654435761).wrapping_add(seed as u32)) % 3 == 0)
            .collect();
        ctx_nodes.sort_unstable();
        // Candidates: all nodes of the kind the axis can return.
        let mut cands: Vec<Pre> = if axis == Axis::Attribute {
            idx.attributes().to_vec()
        } else {
            (0..doc.node_count() as Pre)
                .filter(|&p| doc.kind(p) != NodeKind::Attribute)
                .collect()
        };
        cands.sort_unstable();
        let mut cost = Cost::new();
        let out = step_join(&doc, axis, &ctx_nodes, &cands, None, &mut cost);
        // Build the expected pair set naively.
        let mut expected: Vec<(u32, Pre)> = Vec::new();
        for (i, &c) in ctx_nodes.iter().enumerate() {
            for &s in &cands {
                if naive_axis(&doc, axis, c, s) {
                    expected.push((i as u32, s));
                }
            }
        }
        let mut got = out.pairs.clone();
        got.sort_unstable();
        expected.sort_unstable();
        prop_assert_eq!(got, expected, "axis {:?}", axis);
    }

    #[test]
    fn cutoff_is_prefix_of_full(doc in doc_strategy(), axis in axis_strategy(), limit in 1usize..20) {
        let idx = ElementIndex::build(&doc);
        let ctx: Vec<Pre> = idx.elements().to_vec();
        let cands: Vec<Pre> = if axis == Axis::Attribute {
            idx.attributes().to_vec()
        } else {
            (0..doc.node_count() as Pre)
                .filter(|&p| doc.kind(p) != NodeKind::Attribute)
                .collect()
        };
        let mut c1 = Cost::new();
        let full = step_join(&doc, axis, &ctx, &cands, None, &mut c1);
        let mut c2 = Cost::new();
        let cut = step_join(&doc, axis, &ctx, &cands, Some(limit), &mut c2);
        prop_assert!(cut.pairs.len() <= limit.max(full.pairs.len().min(limit)));
        prop_assert_eq!(&full.pairs[..cut.pairs.len()], &cut.pairs[..]);
        if full.pairs.len() > limit {
            prop_assert!(cut.truncated);
            // Extrapolation must be positive and finite.
            let est = cut.estimate();
            prop_assert!(est.is_finite() && est >= cut.pairs.len() as f64);
        } else if full.pairs.len() < limit {
            prop_assert!(!cut.truncated);
            prop_assert_eq!(cut.estimate(), full.pairs.len() as f64);
        }
        // full.len() == limit: the cut-off run stops exactly at the last
        // pair and conservatively reports truncation — both acceptable.
    }

    #[test]
    fn inverse_axis_flips_pairs(doc in doc_strategy(), axis in axis_strategy()) {
        // s ∈ axis(c) ⟺ c ∈ axis⁻¹(s), with kind filtering consistent.
        let n = doc.node_count() as Pre;
        for c in 0..n {
            for s in 0..n {
                if naive_axis(&doc, axis, c, s) {
                    // The inverse holds whenever c is a legal *result* of
                    // the inverse axis (kind-wise): attribute nodes are
                    // only reachable via the attribute axis.
                    let inv = axis.inverse();
                    let c_is_attr = doc.kind(c) == NodeKind::Attribute;
                    if (inv == Axis::Attribute) == c_is_attr {
                        prop_assert!(
                            naive_axis(&doc, inv, s, c),
                            "axis {:?} pair ({c},{s}) not inverted by {:?}",
                            axis, inv
                        );
                    }
                }
            }
        }
    }
}
