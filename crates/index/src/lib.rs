#![warn(missing_docs)]

//! # rox-index — element and value indices
//!
//! Reimplements the two XML indices the ROX paper relies on (§2.2):
//!
//! * the **element index** `D³ₑₗₜ(q)`: qualified name → all element pres,
//!   duplicate-free and in document order, with the match *count* available
//!   at zero extra cost (the property the paper exploits for cheap
//!   cardinality seeds);
//! * the **value index** over `(val, qelt, qattr, pre)` tuples answering
//!   `D³ₜₑₓₜ(v)` (text nodes with value v) and `D³ₐₜₜᵣ(v, qelt, qattr)`
//!   (owner elements of matching attributes), via hash lookup for string
//!   equality — mirroring the released MonetDB version the authors used —
//!   plus an ordered numeric projection for range predicates.
//!
//! [`sampling`] provides uniform index sampling (the paper cites
//! partial-sum trees \[26\]; over our in-memory sorted pre lists a direct
//! uniform draw of positions is exact and O(τ log τ)).
//!
//! [`dense`] hosts the hash-free data layouts — the CSR
//! [`SymbolTable`] and the [`PreSet`] bitset — that both the value index
//! and the `rox-ops` join operators build their hot paths on.

pub mod dense;
pub mod element;
pub mod sampling;
pub mod store;
pub mod value;

pub use dense::{PreSet, SymbolTable};
pub use element::ElementIndex;
pub use sampling::{sample_sorted, sample_values};
pub use store::{DocIndexes, DocSource, IndexedStore};
pub use value::ValueIndex;
