//! Format-stability guard: the committed golden snapshot must stay
//! byte-identical to what the current code writes for a fixed corpus, and
//! must stay readable. Any intentional on-disk format change must bump
//! [`SNAPSHOT_VERSION`] and regenerate the fixture:
//!
//! ```text
//! REGENERATE_GOLDEN=1 cargo test -p rox-storage --test golden_format
//! ```

use rox_index::IndexedStore;
use rox_storage::{Snapshot, SNAPSHOT_VERSION};
use rox_xmldb::Catalog;
use std::path::PathBuf;
use std::sync::Arc;

/// A fixed two-document corpus touching every segment kind: elements,
/// attributes, text, numeric values (incl. a fractional one), repeated
/// and unique symbols. Never change these strings — they define the
/// golden file.
const AUCTIONS: &str = r#"<site><open_auction id="a1"><bidder><increase>12</increase></bidder><bidder><increase>30.5</increase></bidder><current>150</current></open_auction><open_auction id="a2"><current>40</current></open_auction></site>"#;
const PEOPLE: &str = r#"<people><person name="alice"><city>utrecht</city></person><person name="bob"><city>amsterdam</city></person></people>"#;

/// Small pages so the golden file exercises multi-page segments while
/// staying a few KiB in the repository.
const GOLDEN_PAGE_SIZE: usize = 256;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("corpus-v{SNAPSHOT_VERSION}.snap"))
}

fn golden_store() -> (Arc<Catalog>, IndexedStore) {
    let catalog = Arc::new(Catalog::new());
    catalog.load_str("auctions.xml", AUCTIONS).unwrap();
    catalog.load_str("people.xml", PEOPLE).unwrap();
    let store = IndexedStore::new(Arc::clone(&catalog));
    for id in catalog.doc_ids() {
        store.indexes(id); // golden file carries real index segments
    }
    (catalog, store)
}

#[test]
fn current_code_writes_the_committed_golden_bytes() {
    let (_, store) = golden_store();
    let tmp = std::env::temp_dir().join(format!("rox-golden-{}.snap", std::process::id()));
    Snapshot::save_with_page_size(&tmp, &store, GOLDEN_PAGE_SIZE).unwrap();
    let written = std::fs::read(&tmp).unwrap();
    std::fs::remove_file(&tmp).ok();

    let path = golden_path();
    if std::env::var_os("REGENERATE_GOLDEN").is_some() {
        std::fs::write(&path, &written).unwrap();
        return;
    }
    let committed = std::fs::read(&path)
        .unwrap_or_else(|e| panic!("missing golden fixture {}: {e}", path.display()));
    assert!(
        written == committed,
        "snapshot format drifted from the committed golden file ({} vs {} bytes).\n\
         If the change is intentional, bump SNAPSHOT_VERSION and run\n\
         REGENERATE_GOLDEN=1 cargo test -p rox-storage --test golden_format",
        written.len(),
        committed.len()
    );
}

/// The v1 fixture is kept committed precisely so this guard can prove
/// old-format files are *rejected with a version message*, never
/// silently misread as the current format.
#[test]
fn previous_format_version_is_rejected_clearly() {
    let v1 = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/corpus-v1.snap");
    let msg = match Snapshot::open(&v1, None) {
        Ok(_) => panic!("v1 fixture must not open"),
        Err(e) => e.to_string(),
    };
    assert!(
        msg.contains("unsupported snapshot version 1")
            && msg.contains(&format!("expected {SNAPSHOT_VERSION}")),
        "unclear version-mismatch error: {msg}"
    );
}

#[test]
fn committed_golden_file_stays_readable() {
    let (expected, _) = golden_store();
    let (catalog, source) = Snapshot::open(&golden_path(), None).unwrap();
    assert_eq!(catalog.len(), 2);
    assert_eq!(catalog.interner().dump(), expected.interner().dump());
    for id in catalog.doc_ids() {
        let got = source
            .try_document(id)
            .unwrap()
            .expect("doc in golden file");
        let want = expected.doc(id);
        assert_eq!(got.uri(), want.uri());
        let (cg, cw) = (got.columns(), want.columns());
        assert_eq!(cg.size, cw.size);
        assert_eq!(cg.level, cw.level);
        assert_eq!(cg.parent, cw.parent);
        assert_eq!(cg.kind, cw.kind);
        assert_eq!(cg.name, cw.name);
        assert_eq!(cg.value, cw.value);
        assert!(
            source.try_indexes(id).unwrap().is_some(),
            "golden index segment must decode"
        );
    }
}
