#![warn(missing_docs)]

//! # rox-bench — the experiment harness
//!
//! One module per table/figure of the paper's evaluation (§4), each with a
//! `run(cfg)` entry point returning structured results and a binary under
//! `src/bin/` that prints them. Criterion benches under `benches/` wrap
//! the same entry points at reduced scale.
//!
//! | Paper artifact | Module | Binary |
//! |---|---|---|
//! | Table 2 (chain-sampling rounds, Q1/Qm1) | [`table2`] | `table2_chain` |
//! | Table 3 (DBLP document inventory)       | [`table3`] | `table3_docs` |
//! | Fig. 5 (join-order intermediate sizes)  | [`fig5`]   | `fig5_join_orders` |
//! | Fig. 6 (plan classes vs correlation)    | [`fig6`]   | `fig6_plan_classes` |
//! | Fig. 7 (document-size scaling)          | [`fig7`]   | `fig7_scaling` |
//! | Fig. 8 (sample-size overhead)           | [`fig8`]   | `fig8_sample_size` |
//! | Thread scaling (extension)              | [`scaling_threads`] | `fig_scaling_threads` |
//! | Dense-join layouts (extension)          | [`joins`]  | `bench_joins` |
//! | Engine serving layer (extension)        | [`engine`] | `bench_engine` |
//! | Open-loop tail-latency serving (extension) | [`serving`] | `bench_serving` |
//! | Plan revalidation & demotion (extension) | [`revalidation`] | `bench_revalidation` |
//! | Staircase kernels (extension)           | [`staircase`] | `bench_staircase` |
//! | Snapshot storage & buffer pool (extension) | [`storage`] | `bench_storage` |
//!
//! Every `BENCH_*.json` emitter embeds the [`machine_json`] fragment so a
//! committed artifact records the hardware it was measured on.

pub mod args;
pub mod engine;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod joins;
pub mod recovery;
pub mod revalidation;
pub mod scaling_threads;
pub mod serving;
pub mod setup;
pub mod staircase;
pub mod storage;
pub mod table2;
pub mod table3;

pub use setup::{dblp_catalog, xmark_catalog, DblpSetup};

/// The `"machine"` fragment every `BENCH_*.json` emitter embeds: the
/// logical core count the run saw and the size of the process-shared
/// worker pool (benches that build their own pool additionally record
/// their thread setting in their `config` object).
pub fn machine_json() -> String {
    format!(
        "{{\"logical_cores\": {}, \"shared_pool_workers\": {}}}",
        rox_par::Parallelism::Auto.threads(),
        rox_par::WorkerPool::shared().workers()
    )
}
