//! The ROX run-time optimizer (Algorithm 1): intertwined optimization and
//! evaluation of a Join Graph.
//!
//! Phase 1 seeds per-vertex samples and cardinalities from the indices and
//! weights every edge by sampled execution. Phase 2 alternates
//! [`chain_sample`](crate::chain::chain_sample()) (search-space exploration)
//! with full execution of the superior path segment, re-sampling the
//! weights of all edges incident to updated vertices after every execution
//! — re-sampling, not scaling, is what lets ROX "detect arbitrary
//! correlations between edges in the Join Graph" (§3).

use crate::chain::{chain_sample, ChainTrace};
use crate::env::{EnvError, RoxEnv};
use crate::estimate::estimate_cards;
use crate::state::{EdgeExec, EvalState};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rox_joingraph::{EdgeId, JoinGraph};
use rox_ops::{Cost, Relation, Tail};
use rox_par::Parallelism;
use rox_xmldb::Catalog;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Tunables of the run-time optimizer.
#[derive(Debug, Clone, Copy)]
pub struct RoxOptions {
    /// Sample size τ (the paper's default is 100, §3 Phase 1).
    pub tau: usize,
    /// RNG seed — all sampling is deterministic under a fixed seed.
    pub seed: u64,
    /// Record chain-sampling traces (Table 2 / Fig. 3 reproductions).
    pub trace: bool,
    /// Ablation: disable chain sampling and greedily execute the
    /// minimum-weight edge (Algorithm 2 degenerates to its line-5 case).
    /// ROX with this off is vulnerable to exactly the local minima §3.1
    /// motivates.
    pub chain_sampling: bool,
    /// Ablation: disable weight re-sampling after executions and keep the
    /// Phase 1 weights. The paper argues re-sampling (not scaling) is what
    /// detects arbitrary correlations (§3); turning it off shows why.
    pub resample: bool,
    /// Extension (paper §6, first item): adaptive optimization effort.
    /// When set, chain sampling is skipped (greedy fallback) while the
    /// accumulated sampling work exceeds `budget × max(execution work, τ²)`
    /// — i.e. ROX stops investing in exploration when optimization already
    /// dominates the run. `None` (default) reproduces the paper's
    /// always-explore behaviour.
    pub effort_budget: Option<f64>,
    /// Extension: worker-thread budget. Candidate sampling (Phase 1
    /// weighting, chain-sampling extensions, post-execution re-weighting)
    /// fans its independent cut-off operator runs out across this many
    /// threads, and full edge executions use the partitioned staircase /
    /// hash joins. Results are **bit-identical** to
    /// [`Parallelism::Sequential`] — same outputs, same chosen join order,
    /// same cost counters (the equivalence proptest in `tests/` checks
    /// this). The default reproduces the paper's single-threaded setting.
    pub parallelism: Parallelism,
    /// Extension: plan-cache policy, honoured by
    /// [`RoxEngine::run`](crate::RoxEngine::run) (a direct [`run_rox`]
    /// call has no plan cache and always optimizes, whatever this says).
    /// The default reproduces the paper's per-query optimization.
    pub plan_reuse: crate::engine::PlanReuse,
    /// Extension: bound on the engine's serving admission queue. With
    /// `Some(m)`, [`RoxEngine::try_submit`](crate::RoxEngine::try_submit)
    /// rejects a job (`ServeError::Overloaded`) once `m` admitted jobs are
    /// already waiting to start, and
    /// [`RoxEngine::run_many`](crate::RoxEngine::run_many) rejects the
    /// jobs deeper than `threads + m` in its batch — explicit backpressure
    /// instead of unbounded buffering. `None` (default) admits everything.
    pub max_queued: Option<usize>,
}

impl Default for RoxOptions {
    fn default() -> Self {
        RoxOptions {
            tau: 100,
            seed: 42,
            trace: false,
            chain_sampling: true,
            resample: true,
            effort_budget: None,
            parallelism: Parallelism::Sequential,
            plan_reuse: crate::engine::PlanReuse::AlwaysOptimize,
            max_queued: None,
        }
    }
}

/// Everything a ROX run produces.
#[derive(Debug)]
pub struct RoxReport {
    /// The fully joined Join Graph result (pre-tail).
    pub joined: Relation,
    /// The query output after the plan tail (π·δ·τ·π).
    pub output: Relation,
    /// Edges in the order ROX executed them — the "pure plan" that replays
    /// without sampling.
    pub executed_order: Vec<EdgeId>,
    /// Per-execution result sizes (Fig. 5's cumulative intermediates).
    pub edge_log: Vec<EdgeExec>,
    /// Work done by full executions.
    pub exec_cost: Cost,
    /// Work done by sampling (phase 1 + chain sampling + re-weighting).
    pub sample_cost: Cost,
    /// Wall-clock spent in full execution (+ finalization and tail).
    pub exec_wall: Duration,
    /// Wall-clock spent sampling.
    pub sample_wall: Duration,
    /// Total wall-clock of the run.
    pub total_wall: Duration,
    /// Chain-sampling traces (only when `options.trace`).
    pub traces: Vec<ChainTrace>,
}

impl RoxReport {
    /// Relative sampling overhead `(R - r) / r` in percent, computed from
    /// the work counters (deterministic analogue of Fig. 8's wall-clock
    /// metric).
    pub fn sampling_overhead_pct(&self) -> f64 {
        let r = self.exec_cost.total() as f64;
        if r == 0.0 {
            return 0.0;
        }
        100.0 * self.sample_cost.total() as f64 / r
    }
}

/// Run ROX over a compiled Join Graph against loaded documents.
pub fn run_rox(
    catalog: Arc<Catalog>,
    graph: &JoinGraph,
    options: RoxOptions,
) -> Result<RoxReport, EnvError> {
    let env = RoxEnv::with_parallelism(catalog, graph, options.parallelism)?;
    run_rox_with_env(&env, graph, options)
}

/// As [`run_rox`] but reusing an existing environment (index caches stay
/// warm across runs — how the experiment harnesses amortize setup).
/// `options.parallelism` governs the whole run — sampling fan-out *and*
/// full edge execution — overriding whatever parallelism `env` carries
/// (the env knob still applies to plan replays and baselines driven
/// through [`crate::run_plan_with_env`]).
pub fn run_rox_with_env(
    env: &RoxEnv,
    graph: &JoinGraph,
    options: RoxOptions,
) -> Result<RoxReport, EnvError> {
    let started = Instant::now();
    let mut rng = StdRng::seed_from_u64(options.seed);
    let mut state = EvalState::new(env, graph);
    // RoxOptions is the single source of truth for a ROX run: it governs
    // both the sampling fan-out and full edge execution, regardless of the
    // parallelism the environment was built with.
    state.set_parallelism(options.parallelism);
    let mut sample_cost = Cost::new();
    let mut sample_wall = Duration::ZERO;
    let mut exec_wall = Duration::ZERO;
    let mut traces = Vec::new();

    // Descendant steps from document roots are semantically redundant and
    // skipped (§3.2).
    for e in graph.edges() {
        if e.redundant {
            state.mark_executed(e.id);
        }
    }

    // ---- Phase 1: seed samples, cards and edge weights (lines 1-4). ----
    let t0 = Instant::now();
    for v in graph.vertices() {
        state.seed_sample(v.id, &mut rng, options.tau);
    }
    // Every candidate edge is weighted by an independent cut-off sampled
    // operator run over shared immutable state — the embarrassingly
    // parallel step `estimate_cards` fans out across the worker pool.
    let mut weights: Vec<Option<f64>> = vec![None; graph.edge_count()];
    let candidates = state.unexecuted_edges();
    let ws = estimate_cards(
        &state,
        &candidates,
        options.tau,
        options.parallelism,
        &mut sample_cost,
    );
    for (&e, w) in candidates.iter().zip(ws) {
        weights[e as usize] = w;
    }
    sample_wall += t0.elapsed();

    // ---- Phase 2: alternate exploration and execution (lines 5-19). ----
    let mut executed_order = Vec::new();
    optimize_loop(
        &mut state,
        &mut weights,
        &mut rng,
        &options,
        &mut executed_order,
        &mut sample_cost,
        &mut sample_wall,
        &mut exec_wall,
        &mut traces,
    );

    // ---- Finalize: assemble the full join and apply the tail. ----
    let t_fin = Instant::now();
    let joined = state.finalize();
    state.recycle_scratch();
    let tail = Tail {
        dedup_vars: graph.tail.dedup.clone(),
        sort_vars: graph.tail.sort.clone(),
        output_vars: vec![graph.tail.output],
    };
    let mut exec_cost = state.exec_cost;
    let output = tail.apply(&joined, &mut exec_cost);
    exec_wall += t_fin.elapsed();

    Ok(RoxReport {
        joined,
        output,
        executed_order,
        edge_log: state.edge_log.clone(),
        exec_cost,
        sample_cost,
        exec_wall,
        sample_wall,
        total_wall: started.elapsed(),
        traces,
    })
}

/// The Phase-2 drive loop of Algorithm 1 (lines 5-19): alternate
/// exploration (chain sampling or the greedy ablation) with full execution
/// of the superior path segment, re-weighting edges incident to updated
/// vertices after every execution. Factored out of [`run_rox_with_env`] so
/// mid-query demotion (the guarded replay's breach path) drives the exact
/// same loop over a state that already carries an executed prefix.
#[allow(clippy::too_many_arguments)] // mirrors the loop's former locals 1:1
pub(crate) fn optimize_loop(
    state: &mut EvalState<'_>,
    weights: &mut [Option<f64>],
    rng: &mut StdRng,
    options: &RoxOptions,
    executed_order: &mut Vec<EdgeId>,
    sample_cost: &mut Cost,
    sample_wall: &mut Duration,
    exec_wall: &mut Duration,
    traces: &mut Vec<ChainTrace>,
) {
    while !state.unexecuted_edges().is_empty() {
        let t_sample = Instant::now();
        // Adaptive effort (§6): once sampling work dominates execution
        // work beyond the budget, stop paying for lookahead.
        let explore = options.chain_sampling
            && options.effort_budget.is_none_or(|budget| {
                let floor = (options.tau * options.tau) as f64;
                (sample_cost.total() as f64) <= budget * (state.exec_cost.total() as f64).max(floor)
            });
        let outcome = if explore {
            chain_sample(
                state,
                weights,
                rng,
                options.tau,
                options.parallelism,
                sample_cost,
            )
        } else {
            // Greedy ablation: the minimum-weight edge, no lookahead.
            let e = *state
                .unexecuted_edges()
                .iter()
                .min_by(|&&a, &&b| {
                    let wa = weights[a as usize].unwrap_or(f64::INFINITY);
                    let wb = weights[b as usize].unwrap_or(f64::INFINITY);
                    wa.partial_cmp(&wb).unwrap().then(a.cmp(&b))
                })
                .expect("loop guard");
            crate::chain::ChainOutcome {
                path: vec![e],
                trace: crate::chain::ChainTrace {
                    seed_edge: e,
                    ..Default::default()
                },
            }
        };
        *sample_wall += t_sample.elapsed();
        if options.trace {
            traces.push(outcome.trace);
        }
        // Execute the chosen path segment: the paper treats it "as a
        // separate Join Graph" and executes it in its best order — we pick
        // the current-minimum-weight edge of the segment each time,
        // re-weighting in between.
        let mut remaining: Vec<EdgeId> = outcome.path;
        while !remaining.is_empty() {
            remaining.retain(|&e| !state.is_executed(e));
            let Some(&e) = remaining.iter().min_by(|&&a, &&b| {
                let wa = weights[a as usize].unwrap_or(f64::INFINITY);
                let wb = weights[b as usize].unwrap_or(f64::INFINITY);
                wa.partial_cmp(&wb).unwrap().then(a.cmp(&b))
            }) else {
                break;
            };
            let t_exec = Instant::now();
            let changed = state.execute_edge(e, Some((&mut *rng, options.tau)));
            *exec_wall += t_exec.elapsed();
            executed_order.push(e);
            remaining.retain(|&x| x != e);
            // Lines 18-19: re-sample the weights of all unexecuted edges
            // incident to updated vertices — one independent sampled run
            // per edge, fanned out in parallel like Phase 1.
            if options.resample {
                let t_rw = Instant::now();
                let stale: Vec<EdgeId> = changed
                    .iter()
                    .flat_map(|&v| state.unexecuted_edges_of(v))
                    .collect();
                let ws =
                    estimate_cards(state, &stale, options.tau, options.parallelism, sample_cost);
                for (&e2, w) in stale.iter().zip(ws) {
                    weights[e2 as usize] = w;
                }
                *sample_wall += t_rw.elapsed();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rox_joingraph::compile_query;

    fn setup(src: &str, docs: &[(&str, &str)]) -> (Arc<Catalog>, JoinGraph) {
        let cat = Arc::new(Catalog::new());
        for (uri, xml) in docs {
            cat.load_str(uri, xml).unwrap();
        }
        (cat, compile_query(src).unwrap())
    }

    #[test]
    fn simple_path_query() {
        let (cat, g) = setup(
            r#"for $a in doc("d.xml")//auction, $b in $a/bidder return $b"#,
            &[(
                "d.xml",
                "<site><auction><bidder/><bidder/></auction><auction><bidder/></auction></site>",
            )],
        );
        let r = run_rox(cat, &g, RoxOptions::default()).unwrap();
        assert_eq!(r.output.len(), 3);
        assert!(!r.executed_order.is_empty());
    }

    #[test]
    fn cross_document_join_query() {
        let (cat, g) = setup(
            r#"for $x in doc("x.xml")//a, $y in doc("y.xml")//b
               where $x/text() = $y/text() return $x"#,
            &[
                ("x.xml", "<r><a>k1</a><a>k2</a><a>zz</a></r>"),
                ("y.xml", "<r><b>k2</b><b>k1</b><b>k1</b></r>"),
            ],
        );
        let r = run_rox(cat, &g, RoxOptions::default()).unwrap();
        // Join pairs: k1×2, k2×1 = 3 joined rows; distinct (a,b) pairs = 3;
        // output column a values: k1 twice (two partners), k2 once.
        assert_eq!(r.joined.len(), 3);
        assert_eq!(r.output.len(), 3);
    }

    #[test]
    fn deterministic_under_seed() {
        let (cat, g) = setup(
            r#"for $x in doc("x.xml")//a, $y in doc("y.xml")//b
               where $x/text() = $y/text() return $x"#,
            &[
                ("x.xml", "<r><a>k1</a><a>k2</a></r>"),
                ("y.xml", "<r><b>k2</b><b>k1</b></r>"),
            ],
        );
        let r1 = run_rox(Arc::clone(&cat), &g, RoxOptions::default()).unwrap();
        let r2 = run_rox(cat, &g, RoxOptions::default()).unwrap();
        assert_eq!(r1.executed_order, r2.executed_order);
        assert_eq!(r1.output, r2.output);
    }

    #[test]
    fn empty_result_is_fine() {
        let (cat, g) = setup(
            r#"for $x in doc("x.xml")//a, $y in doc("y.xml")//b
               where $x/text() = $y/text() return $x"#,
            &[("x.xml", "<r><a>p</a></r>"), ("y.xml", "<r><b>q</b></r>")],
        );
        let r = run_rox(cat, &g, RoxOptions::default()).unwrap();
        assert_eq!(r.output.len(), 0);
    }

    #[test]
    fn sampling_and_exec_costs_separated() {
        let (cat, g) = setup(
            r#"for $a in doc("d.xml")//auction, $b in $a/bidder return $b"#,
            &[(
                "d.xml",
                "<site><auction><bidder/><bidder/></auction></site>",
            )],
        );
        let r = run_rox(cat, &g, RoxOptions::default()).unwrap();
        assert!(r.sample_cost.total() > 0);
        assert!(r.exec_cost.total() > 0);
        assert!(r.sampling_overhead_pct() >= 0.0);
    }

    #[test]
    fn adaptive_effort_caps_sampling_and_stays_correct() {
        let body: String = (0..50)
            .map(|i| {
                if i % 2 == 0 {
                    "<auction><cheap/><bidder/></auction>"
                } else {
                    "<auction><bidder/><bidder/><bidder/></auction>"
                }
            })
            .collect();
        let xml = format!("<site>{body}</site>");
        let (cat, g) = setup(
            r#"for $a in doc("d.xml")//auction[./cheap], $b in $a/bidder return $b"#,
            &[("d.xml", &xml)],
        );
        let free = run_rox(Arc::clone(&cat), &g, RoxOptions::default()).unwrap();
        let capped = run_rox(
            cat,
            &g,
            RoxOptions {
                effort_budget: Some(0.0),
                tau: 10,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(free.output, capped.output);
        // With a zero budget past the τ² floor, sampling must not balloon.
        assert!(capped.sample_cost.total() <= free.sample_cost.total());
    }

    #[test]
    fn trace_collection_when_enabled() {
        let (cat, g) = setup(
            r#"for $a in doc("d.xml")//auction[./cheap], $b in $a/bidder return $b"#,
            &[(
                "d.xml",
                "<site><auction><cheap/><bidder/></auction><auction><bidder/><bidder/></auction></site>",
            )],
        );
        let r = run_rox(
            cat,
            &g,
            RoxOptions {
                trace: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(!r.traces.is_empty());
        assert_eq!(r.output.len(), 1);
    }
}
