//! Ablation benches for the design choices the paper argues for (§3):
//! chain sampling (vs greedy min-weight) and weight re-sampling (vs
//! keeping Phase-1 weights), on the correlated Fig. 5 combination.

use criterion::{criterion_group, criterion_main, Criterion};
use rox_core::{run_rox_with_env, RoxEnv, RoxOptions};
use rox_datagen::{dblp_query, venue_index};
use std::hint::black_box;
use std::sync::Arc;

fn bench_ablations(c: &mut Criterion) {
    let setup = rox_bench::dblp_catalog(1, 0.1, 23);
    let combo = [
        venue_index("VLDB"),
        venue_index("ICDE"),
        venue_index("ICIP"),
        venue_index("ADBIS"),
    ];
    let graph = rox_joingraph::compile_query(&dblp_query(&combo)).unwrap();
    let env = RoxEnv::new(Arc::clone(&setup.catalog), &graph).unwrap();
    let mut group = c.benchmark_group("ablation");
    let variants: [(&str, RoxOptions); 3] = [
        ("full_rox", RoxOptions::default()),
        (
            "no_chain_sampling",
            RoxOptions {
                chain_sampling: false,
                ..Default::default()
            },
        ),
        (
            "no_resampling",
            RoxOptions {
                resample: false,
                ..Default::default()
            },
        ),
    ];
    for (name, opts) in variants {
        group.bench_function(name, |b| {
            b.iter(|| black_box(run_rox_with_env(&env, &graph, opts).unwrap()))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_ablations
}
criterion_main!(benches);
