//! Little-endian byte codec for snapshot segments.
//!
//! A *segment* is a logical byte stream stored across a contiguous run of
//! pages (each segment starts on a fresh page; its last page may be
//! partially filled). [`ByteWriter`] builds the stream in memory at save
//! time. At open time [`SegmentReader`] replays the stream by faulting
//! the underlying pages through the buffer pool — pinning at most one
//! page, whatever the segment size — and the cold path drains a whole
//! segment in one scan ([`SegmentReader::read_all`]) to decode it from
//! memory via [`SliceReader`]. Both readers share the [`ByteReader`]
//! decoding vocabulary.
//!
//! All integers are little-endian; `f64` travels as its raw bit pattern
//! (`to_bits`/`from_bits`), which keeps NaN payloads and signed zeros
//! bit-identical across a save/open roundtrip.
//!
//! ## Packed integer runs
//!
//! Raw 4-byte columns waste most of their bits on the values snapshots
//! actually store (sorted `Pre` lists, CSR offsets, small levels/kinds).
//! [`ByteWriter::put_packed_u32s`] encodes a run with the cheapest of two
//! codecs and tags the choice in the stream:
//!
//! * [`RunCodec::DeltaVarint`] — the first value as a LEB128 varint, then
//!   every successive difference as a zigzag varint. Sorted runs with
//!   small gaps (postings, offsets) and near-sequential columns
//!   (`parent`) cost ~1 byte per value.
//! * [`RunCodec::BitPacked`] — a fixed bit width (that of the largest
//!   value, floored at 1) and all values packed LSB-first. The fallback
//!   for non-monotone, large-delta runs (e.g. value-symbol columns).
//!
//! The choice is a pure function of the values — smaller encoding wins,
//! ties go to delta+varint — so re-encoding a decoded run reproduces the
//! original bytes and `save → open → save` stays a byte fixed point.
//! [`RunCodec::Raw`] is accepted on decode for completeness but never
//! chosen by the encoder.

use crate::error::{Result, StorageError};
use crate::file::FileManager;
use crate::pool::{BufferPool, FetchHint, PageRef};

/// Codec of one packed `u32` run (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum RunCodec {
    /// Plain little-endian 4-byte values.
    Raw = 0,
    /// First value varint, then zigzag-varint deltas.
    DeltaVarint = 1,
    /// Fixed-width LSB-first bit packing (width of the largest value).
    BitPacked = 2,
}

impl RunCodec {
    /// The codec for tag byte `b`.
    pub fn from_u8(b: u8) -> Result<RunCodec> {
        Ok(match b {
            0 => RunCodec::Raw,
            1 => RunCodec::DeltaVarint,
            2 => RunCodec::BitPacked,
            _ => return Err(StorageError::Format(format!("invalid run codec tag {b}"))),
        })
    }

    /// Short human-readable name (bench/stats output).
    pub fn name(self) -> &'static str {
        match self {
            RunCodec::Raw => "raw",
            RunCodec::DeltaVarint => "delta-varint",
            RunCodec::BitPacked => "bitpacked",
        }
    }

    /// The bit for this codec in a segment's codec mask.
    pub fn mask_bit(self) -> u8 {
        1 << (self as u8)
    }

    /// The codecs named by a segment codec mask.
    pub fn from_mask(mask: u8) -> Vec<RunCodec> {
        [RunCodec::Raw, RunCodec::DeltaVarint, RunCodec::BitPacked]
            .into_iter()
            .filter(|c| mask & c.mask_bit() != 0)
            .collect()
    }
}

fn push_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(b);
            return;
        }
        buf.push(b | 0x80);
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Read one varint from `payload` starting at `*at`, bounding it to 64
/// bits. Corrupt streams (running off the payload, over-long varints) are
/// clean errors.
fn read_varint(payload: &[u8], at: &mut usize) -> Result<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let &b = payload
            .get(*at)
            .ok_or_else(|| StorageError::Format("packed run truncated mid-varint".to_string()))?;
        *at += 1;
        if shift >= 64 || (shift == 63 && b > 1) {
            return Err(StorageError::Format(
                "varint exceeds 64 bits in packed run".to_string(),
            ));
        }
        v |= u64::from(b & 0x7F) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

fn delta_varint_bytes(vals: &[u32]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(vals.len() + 4);
    let mut prev = 0i64;
    for (i, &v) in vals.iter().enumerate() {
        if i == 0 {
            push_varint(&mut buf, u64::from(v));
        } else {
            push_varint(&mut buf, zigzag(i64::from(v) - prev));
        }
        prev = i64::from(v);
    }
    buf
}

fn bitpacked_bytes(vals: &[u32]) -> Vec<u8> {
    // Width of the largest value, floored at 1 so every value occupies at
    // least one bit — that floor is what lets decoders bound a claimed
    // count by `payload_len * 8` before allocating.
    let width = vals
        .iter()
        .map(|&v| 32 - v.leading_zeros())
        .max()
        .unwrap_or(1)
        .max(1);
    let mut buf = Vec::with_capacity(1 + (vals.len() * width as usize).div_ceil(8));
    buf.push(width as u8);
    let mut acc = 0u64;
    let mut bits = 0u32;
    for &v in vals {
        acc |= u64::from(v) << bits;
        bits += width;
        while bits >= 8 {
            buf.push((acc & 0xFF) as u8);
            acc >>= 8;
            bits -= 8;
        }
    }
    if bits > 0 {
        buf.push((acc & 0xFF) as u8);
    }
    buf
}

/// Encode `vals` with the cheapest codec (see the module docs): the
/// returned payload excludes the codec tag and any length framing.
pub fn pack_u32s(vals: &[u32]) -> (RunCodec, Vec<u8>) {
    let dv = delta_varint_bytes(vals);
    if vals.is_empty() {
        return (RunCodec::DeltaVarint, dv);
    }
    let width = vals
        .iter()
        .map(|&v| 32 - v.leading_zeros())
        .max()
        .unwrap_or(1)
        .max(1) as usize;
    let bp_len = 1 + (vals.len() * width).div_ceil(8);
    if dv.len() <= bp_len {
        (RunCodec::DeltaVarint, dv)
    } else {
        (RunCodec::BitPacked, bitpacked_bytes(vals))
    }
}

/// Decode a packed payload of exactly `n` values. Any mismatch between
/// `payload`, `codec` and `n` — truncation, trailing garbage, deltas
/// escaping the `u32` range — is a clean [`StorageError::Format`].
pub fn unpack_u32s(codec: RunCodec, payload: &[u8], n: usize) -> Result<Vec<u32>> {
    let bad = |reason: &str| StorageError::Format(format!("packed run: {reason}"));
    // Every codec spends at least one bit per value (bitpack width is
    // floored at 1), so an absurd claimed count is rejected before any
    // allocation is sized from it.
    if n > payload.len().saturating_mul(8) && n > 0 {
        return Err(bad("claimed count exceeds payload capacity"));
    }
    match codec {
        RunCodec::Raw => {
            if payload.len() != n * 4 {
                return Err(bad("raw payload length mismatch"));
            }
            Ok(payload
                .chunks_exact(4)
                .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
                .collect())
        }
        RunCodec::DeltaVarint => {
            let mut out = Vec::with_capacity(n);
            let mut at = 0usize;
            let mut prev = 0i64;
            for i in 0..n {
                // One-byte varints dominate real columns (small sorted
                // gaps, near-sequential parents): decode them inline and
                // take the general loop only for longer encodings.
                let raw = match payload.get(at) {
                    Some(&b) if b < 0x80 => {
                        at += 1;
                        u64::from(b)
                    }
                    _ => read_varint(payload, &mut at)?,
                };
                let v = if i == 0 {
                    i64::try_from(raw).map_err(|_| bad("first value exceeds u32"))?
                } else {
                    prev + unzigzag(raw)
                };
                let v32 = u32::try_from(v).map_err(|_| bad("delta escapes u32 range"))?;
                out.push(v32);
                prev = v;
            }
            if at != payload.len() {
                return Err(bad("trailing bytes after delta-varint run"));
            }
            Ok(out)
        }
        RunCodec::BitPacked => {
            if n == 0 {
                return if payload.is_empty() {
                    Ok(Vec::new())
                } else {
                    Err(bad("trailing bytes after empty bitpacked run"))
                };
            }
            let Some((&width, packed)) = payload.split_first() else {
                return Err(bad("bitpacked run missing width byte"));
            };
            let width = u32::from(width);
            if width == 0 || width > 32 {
                return Err(bad("bitpacked width out of range"));
            }
            let expect = (n * width as usize).div_ceil(8);
            if packed.len() != expect {
                return Err(bad("bitpacked payload length mismatch"));
            }
            let mask = if width == 32 {
                u64::from(u32::MAX)
            } else {
                (1u64 << width) - 1
            };
            // Word-at-a-time extraction: an unaligned 8-byte load always
            // covers one value (bit offset within the byte ≤ 7, width
            // ≤ 32 → 39 bits), so the hot loop is a load, shift and mask.
            let mut out = Vec::with_capacity(n);
            let mut bit = 0usize;
            let whole_words = packed.len().saturating_sub(7);
            for _ in 0..n {
                let byte = bit >> 3;
                let word = if byte < whole_words {
                    u64::from_le_bytes(packed[byte..byte + 8].try_into().unwrap())
                } else {
                    let mut tail = [0u8; 8];
                    tail[..packed.len() - byte].copy_from_slice(&packed[byte..]);
                    u64::from_le_bytes(tail)
                };
                out.push(((word >> (bit & 7)) & mask) as u32);
                bit += width as usize;
            }
            // The final partial byte may carry padding bits; they must be
            // zero or the encoding is not canonical (and corrupt bits
            // would otherwise pass unnoticed).
            if bit & 7 != 0 && packed[bit >> 3] >> (bit & 7) != 0 {
                return Err(bad("nonzero padding bits in bitpacked run"));
            }
            Ok(out)
        }
    }
}

/// An in-memory little-endian byte stream builder.
#[derive(Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
    packed_raw_delta: u64,
    codec_mask: u8,
}

impl ByteWriter {
    /// An empty stream.
    pub fn new() -> Self {
        ByteWriter::default()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// What this stream would occupy had every packed run been stored as
    /// raw 4-byte values (the pre-compression format) — `len()` plus the
    /// bytes compression saved. Feeds the bench's compressed-vs-raw
    /// report.
    pub fn raw_len(&self) -> u64 {
        self.buf.len() as u64 + self.packed_raw_delta
    }

    /// Bitmask of every [`RunCodec`] chosen by packed runs so far
    /// (bit = `1 << codec as u8`).
    pub fn codec_mask(&self) -> u8 {
        self.codec_mask
    }

    /// Fold another writer's packed-run accounting into this one (used
    /// when sub-streams are assembled separately then concatenated).
    pub fn absorb_accounting(&mut self, other: &ByteWriter) {
        self.packed_raw_delta += other.packed_raw_delta;
        self.codec_mask |= other.codec_mask;
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `f64` as its raw bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_u32(u32::try_from(s.len()).expect("string too long for snapshot"));
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Append a length-prefixed raw byte blob (an embedded sub-stream —
    /// the WAL frames whole document segments this way).
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_u32(u32::try_from(bytes.len()).expect("blob too long for stream"));
        self.buf.extend_from_slice(bytes);
    }

    /// Append a length-prefixed `u32` slice.
    pub fn put_u32_slice(&mut self, vs: &[u32]) {
        self.put_u32(u32::try_from(vs.len()).expect("slice too long for snapshot"));
        for &v in vs {
            self.put_u32(v);
        }
    }

    /// Append a packed run whose count the reader knows from elsewhere:
    /// `u8 codec | u32 payload_len | payload`. Returns the chosen codec.
    pub fn put_packed_u32s(&mut self, vs: &[u32]) -> RunCodec {
        let (codec, payload) = pack_u32s(vs);
        self.put_u8(codec as u8);
        self.put_u32(u32::try_from(payload.len()).expect("packed run too long for snapshot"));
        self.buf.extend_from_slice(&payload);
        self.codec_mask |= codec.mask_bit();
        let raw = vs.len() as u64 * 4;
        self.packed_raw_delta += raw.saturating_sub(5 + payload.len() as u64);
        codec
    }

    /// Append a self-describing packed run: `u32 n` then the
    /// [`put_packed_u32s`](Self::put_packed_u32s) framing.
    pub fn put_packed_u32_vec(&mut self, vs: &[u32]) -> RunCodec {
        self.put_u32(u32::try_from(vs.len()).expect("slice too long for snapshot"));
        self.put_packed_u32s(vs)
    }

    /// The finished stream.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Sequential decoding of a snapshot byte stream.
///
/// The `get_*` vocabulary is defined once here over two primitives, so
/// it works identically whether bytes are faulted from disk page by page
/// ([`SegmentReader`]) or already sit in memory ([`SliceReader`]).
pub trait ByteReader {
    /// Fill `out` from the stream, erroring when it runs short.
    fn read_exact(&mut self, out: &mut [u8]) -> Result<()>;

    /// Bytes left to read.
    fn remaining(&self) -> u64;

    /// Read one byte.
    fn get_u8(&mut self) -> Result<u8> {
        let mut b = [0u8; 1];
        self.read_exact(&mut b)?;
        Ok(b[0])
    }

    /// Read a `u16`.
    fn get_u16(&mut self) -> Result<u16> {
        let mut b = [0u8; 2];
        self.read_exact(&mut b)?;
        Ok(u16::from_le_bytes(b))
    }

    /// Read a `u32`.
    fn get_u32(&mut self) -> Result<u32> {
        let mut b = [0u8; 4];
        self.read_exact(&mut b)?;
        Ok(u32::from_le_bytes(b))
    }

    /// Read a `u64`.
    fn get_u64(&mut self) -> Result<u64> {
        let mut b = [0u8; 8];
        self.read_exact(&mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Read an `f64` from its raw bit pattern.
    fn get_f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Read a length-prefixed UTF-8 string.
    fn get_str(&mut self) -> Result<String> {
        let len = self.get_u32()? as u64;
        if len > self.remaining() {
            return Err(StorageError::Format(format!(
                "string of {len} bytes exceeds remaining segment"
            )));
        }
        let mut bytes = vec![0u8; len as usize];
        self.read_exact(&mut bytes)?;
        String::from_utf8(bytes)
            .map_err(|e| StorageError::Format(format!("invalid UTF-8 in snapshot string: {e}")))
    }

    /// Read a length-prefixed raw byte blob (see [`ByteWriter::put_bytes`]).
    fn get_bytes(&mut self) -> Result<Vec<u8>> {
        let len = self.get_u32()? as u64;
        if len > self.remaining() {
            return Err(StorageError::Format(format!(
                "blob of {len} bytes exceeds remaining segment"
            )));
        }
        let mut bytes = vec![0u8; len as usize];
        self.read_exact(&mut bytes)?;
        Ok(bytes)
    }

    /// Decode the next `n` bytes through `f`, borrowing them in place
    /// when the reader already holds them in memory ([`SliceReader`])
    /// and falling back to one bulk copy when it does not.
    fn with_run<T>(&mut self, n: usize, f: impl FnOnce(&[u8]) -> Result<T>) -> Result<T> {
        f(&self.get_u8_run(n)?)
    }

    /// Read a run of `n` `u8`s in one bulk copy.
    fn get_u8_run(&mut self, n: usize) -> Result<Vec<u8>> {
        if n as u64 > self.remaining() {
            return Err(StorageError::Format(format!(
                "u8 run of {n} entries exceeds remaining segment"
            )));
        }
        let mut bytes = vec![0u8; n];
        self.read_exact(&mut bytes)?;
        Ok(bytes)
    }

    /// Read a run of `n` `u16`s in one bulk copy.
    fn get_u16_run(&mut self, n: usize) -> Result<Vec<u16>> {
        if n as u64 * 2 > self.remaining() {
            return Err(StorageError::Format(format!(
                "u16 run of {n} entries exceeds remaining segment"
            )));
        }
        let mut bytes = vec![0u8; n * 2];
        self.read_exact(&mut bytes)?;
        Ok(bytes
            .chunks_exact(2)
            .map(|c| u16::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    /// Read a run of `n` `u32`s in one bulk copy (no length prefix —
    /// the caller knows the count).
    fn get_u32_run(&mut self, n: usize) -> Result<Vec<u32>> {
        if n as u64 * 4 > self.remaining() {
            return Err(StorageError::Format(format!(
                "u32 run of {n} entries exceeds remaining segment"
            )));
        }
        let mut bytes = vec![0u8; n * 4];
        self.read_exact(&mut bytes)?;
        Ok(bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    /// Read a length-prefixed `u32` vector.
    fn get_u32_vec(&mut self) -> Result<Vec<u32>> {
        let len = self.get_u32()? as u64;
        if len * 4 > self.remaining() {
            return Err(StorageError::Format(format!(
                "u32 run of {len} entries exceeds remaining segment"
            )));
        }
        self.get_u32_run(len as usize)
    }

    /// Read a packed run of exactly `n` values
    /// (see [`ByteWriter::put_packed_u32s`]).
    fn get_packed_u32s(&mut self, n: usize) -> Result<Vec<u32>> {
        let codec = RunCodec::from_u8(self.get_u8()?)?;
        let payload_len = self.get_u32()? as u64;
        if payload_len > self.remaining() {
            return Err(StorageError::Format(format!(
                "packed run of {payload_len} payload bytes exceeds remaining segment"
            )));
        }
        self.with_run(payload_len as usize, |payload| {
            unpack_u32s(codec, payload, n)
        })
    }

    /// Read a self-describing packed run
    /// (see [`ByteWriter::put_packed_u32_vec`]).
    fn get_packed_u32_vec(&mut self) -> Result<Vec<u32>> {
        let n = self.get_u32()? as usize;
        self.get_packed_u32s(n)
    }
}

/// A [`ByteReader`] over bytes already in memory (a drained segment, see
/// [`SegmentReader::read_all`]).
pub struct SliceReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SliceReader<'a> {
    /// A reader over all of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        SliceReader { buf, pos: 0 }
    }
}

impl ByteReader for SliceReader<'_> {
    fn with_run<T>(&mut self, n: usize, f: impl FnOnce(&[u8]) -> Result<T>) -> Result<T> {
        if n as u64 > self.remaining() {
            return Err(StorageError::Format(format!(
                "u8 run of {n} entries exceeds remaining segment"
            )));
        }
        let start = self.pos;
        self.pos = start + n;
        f(&self.buf[start..self.pos])
    }

    fn read_exact(&mut self, out: &mut [u8]) -> Result<()> {
        let end = self
            .pos
            .checked_add(out.len())
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| {
                StorageError::Format(format!(
                    "segment truncated: wanted {} more bytes at offset {}",
                    out.len(),
                    self.pos
                ))
            })?;
        out.copy_from_slice(&self.buf[self.pos..end]);
        self.pos = end;
        Ok(())
    }

    fn remaining(&self) -> u64 {
        (self.buf.len() - self.pos) as u64
    }
}

/// A sequential reader over one segment, faulting pages through the pool.
pub struct SegmentReader<'a> {
    pool: &'a BufferPool,
    file: &'a FileManager,
    first_page: u32,
    len: u64,
    pos: u64,
    current: Option<(u32, PageRef<'a>)>,
    hint: FetchHint,
    readahead: u32,
    prefetched_until: u32,
}

/// Pages fetched ahead per readahead batch on scan readers.
pub const READAHEAD_PAGES: u32 = 8;

impl<'a> SegmentReader<'a> {
    /// A reader over the `len` bytes starting at `first_page`.
    pub fn new(pool: &'a BufferPool, file: &'a FileManager, first_page: u32, len: u64) -> Self {
        SegmentReader {
            pool,
            file,
            first_page,
            len,
            pos: 0,
            current: None,
            hint: FetchHint::Reuse,
            readahead: 0,
            prefetched_until: first_page,
        }
    }

    /// A reader for one sequential pass over the segment: pages are
    /// admitted with [`FetchHint::Scan`] (probationary cohort only, so a
    /// cold scan cannot flush reused pages) and faulted in
    /// [`READAHEAD_PAGES`]-page batches — one positioned read per
    /// contiguous missing run instead of one `pread` per page.
    pub fn new_scan(
        pool: &'a BufferPool,
        file: &'a FileManager,
        first_page: u32,
        len: u64,
    ) -> Self {
        let mut r = SegmentReader::new(pool, file, first_page, len);
        r.hint = FetchHint::Scan;
        // Readahead needs spare frames beyond the one the reader pins;
        // tiny pools degrade to plain one-page faults.
        r.readahead = READAHEAD_PAGES.min(pool.capacity().saturating_sub(1) as u32);
        r
    }

    /// One past the last page this segment occupies.
    fn end_page(&self) -> u32 {
        let payload = self.file.payload_per_page() as u64;
        self.first_page + (self.len.div_ceil(payload).max(1)) as u32
    }

    /// Drain the remaining stream into one in-memory buffer.
    ///
    /// The cold path reads each segment once through the pool — keeping
    /// the scan admission policy, readahead batching and traffic
    /// counters — then decodes from the buffer with a [`SliceReader`]:
    /// faulting field by field would pay the pool's fetch bookkeeping
    /// hundreds of thousands of times per document. The declared segment
    /// length is bounded by the file's page capacity before the buffer
    /// is sized from it, so a corrupt directory cannot force an absurd
    /// allocation.
    pub fn read_all(mut self) -> Result<Vec<u8>> {
        let cap = u64::from(self.file.page_count()) * self.file.payload_per_page() as u64;
        if self.len > cap {
            return Err(StorageError::Format(format!(
                "segment of {} bytes exceeds file capacity of {cap}",
                self.len
            )));
        }
        let mut buf = vec![0u8; self.remaining() as usize];
        self.read_exact(&mut buf)?;
        Ok(buf)
    }
}

impl ByteReader for SegmentReader<'_> {
    fn remaining(&self) -> u64 {
        self.len - self.pos
    }

    /// Fill `out` from the stream, faulting pages as needed.
    fn read_exact(&mut self, out: &mut [u8]) -> Result<()> {
        let payload = self.file.payload_per_page() as u64;
        let mut written = 0;
        while written < out.len() {
            if self.pos >= self.len {
                return Err(StorageError::Format(format!(
                    "segment truncated: wanted {} more bytes at offset {}",
                    out.len() - written,
                    self.pos
                )));
            }
            let page_id = self.first_page + (self.pos / payload) as u32;
            let in_page = (self.pos % payload) as usize;
            if self.current.as_ref().map(|(id, _)| *id) != Some(page_id) {
                // Unpin the previous page first: with a single-frame pool
                // the old pin would otherwise block its own replacement.
                self.current = None;
                if self.readahead > 1 && page_id >= self.prefetched_until {
                    let batch_end = (page_id + self.readahead).min(self.end_page());
                    self.pool.prefetch(self.file, page_id, batch_end)?;
                    self.prefetched_until = batch_end;
                }
                let page = self.pool.fetch_hinted(self.file, page_id, self.hint)?;
                self.current = Some((page_id, page));
            }
            let data: &[u8] = self.current.as_ref().map(|(_, p)| &**p).unwrap();
            if in_page >= data.len() {
                return Err(StorageError::Corrupt {
                    page: page_id,
                    reason: format!(
                        "payload of {} bytes shorter than segment offset {in_page}",
                        data.len()
                    ),
                });
            }
            let take = (data.len() - in_page)
                .min(out.len() - written)
                .min((self.len - self.pos) as usize);
            out[written..written + take].copy_from_slice(&data[in_page..in_page + take]);
            written += take;
            self.pos += take as u64;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::{encode_page, PAGE_HEADER};
    use std::io::Write;

    /// Write `stream` as a page file with tiny pages so multi-page reads
    /// are exercised, returning the segment length.
    fn stream_file(
        name: &str,
        stream: &[u8],
        page_size: usize,
    ) -> (std::path::PathBuf, FileManager, u64) {
        let mut path = std::env::temp_dir();
        path.push(format!("rox-storage-bytes-{}-{name}", std::process::id()));
        let payload = page_size - PAGE_HEADER;
        let mut f = std::fs::File::create(&path).unwrap();
        let mut pages = 0u32;
        for chunk in stream.chunks(payload) {
            f.write_all(&encode_page(pages, chunk, page_size)).unwrap();
            pages += 1;
        }
        if stream.is_empty() {
            f.write_all(&encode_page(0, &[], page_size)).unwrap();
            pages = 1;
        }
        drop(f);
        let fm = FileManager::new(std::fs::File::open(&path).unwrap(), page_size, pages);
        (path, fm, stream.len() as u64)
    }

    #[test]
    fn values_roundtrip_across_page_boundaries() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u16(0xBEEF);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_f64(-0.0);
        w.put_f64(f64::NAN);
        w.put_str("staircase");
        w.put_u32_slice(&[1, 2, 3, u32::MAX]);
        let stream = w.into_bytes();
        // 24-byte pages = 8-byte payloads: every value spans pages.
        let (path, fm, len) = stream_file("values", &stream, 24);
        let pool = BufferPool::new(2);
        let mut r = SegmentReader::new(&pool, &fm, 0, len);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u16().unwrap(), 0xBEEF);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.get_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(r.get_f64().unwrap().is_nan());
        assert_eq!(r.get_str().unwrap(), "staircase");
        assert_eq!(r.get_u32_vec().unwrap(), vec![1, 2, 3, u32::MAX]);
        assert_eq!(r.remaining(), 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_segment_errors_cleanly() {
        let mut w = ByteWriter::new();
        w.put_u32(42);
        let stream = w.into_bytes();
        let (path, fm, _) = stream_file("truncated", &stream, 64);
        let pool = BufferPool::new(2);
        // Claim the segment is longer than it is: the reader must fail on
        // the short page, not fabricate bytes.
        let mut r = SegmentReader::new(&pool, &fm, 0, 100);
        assert_eq!(r.get_u32().unwrap(), 42);
        assert!(r.get_u32().is_err());
        // And a reader that runs off the declared length errors too.
        let mut r2 = SegmentReader::new(&pool, &fm, 0, 4);
        assert_eq!(r2.get_u32().unwrap(), 42);
        assert!(r2.get_u8().is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn packed_runs_roundtrip_and_choose_by_size() {
        // Sorted small-gap run: delta+varint wins.
        let sorted: Vec<u32> = (0..500).map(|i| i * 3).collect();
        let (c, payload) = pack_u32s(&sorted);
        assert_eq!(c, RunCodec::DeltaVarint);
        assert!(payload.len() < sorted.len() * 4);
        assert_eq!(unpack_u32s(c, &payload, sorted.len()).unwrap(), sorted);

        // Non-monotone large-delta run: bitpacking wins.
        let wild: Vec<u32> = (0..500)
            .map(|i| (i as u32).wrapping_mul(2_654_435_761) >> 8)
            .collect();
        let (c, payload) = pack_u32s(&wild);
        assert_eq!(c, RunCodec::BitPacked);
        assert_eq!(unpack_u32s(c, &payload, wild.len()).unwrap(), wild);

        // Re-encoding a decoded run is a fixed point (canonical choice).
        let again = pack_u32s(&unpack_u32s(c, &payload, wild.len()).unwrap());
        assert_eq!(again, (c, payload));

        // Edge runs.
        for vals in [vec![], vec![0], vec![u32::MAX], vec![7; 100]] {
            let (c, payload) = pack_u32s(&vals);
            assert_eq!(unpack_u32s(c, &payload, vals.len()).unwrap(), vals);
        }
    }

    #[test]
    fn packed_runs_reject_corruption() {
        let vals: Vec<u32> = (0..100).map(|i| i * 7).collect();
        let (c, payload) = pack_u32s(&vals);
        // Truncation, wrong counts, absurd counts: clean errors.
        assert!(unpack_u32s(c, &payload[..payload.len() - 1], vals.len()).is_err());
        assert!(unpack_u32s(c, &payload, vals.len() - 1).is_err());
        assert!(unpack_u32s(c, &payload, vals.len() + 1).is_err());
        assert!(unpack_u32s(c, &payload, usize::MAX).is_err());
        assert!(unpack_u32s(c, &[], 3).is_err());
        // Unknown codec tags are rejected at the tag layer.
        assert!(RunCodec::from_u8(9).is_err());
        // An over-long varint cannot smuggle a value past the u32 check.
        let evil = vec![0xFFu8; 11];
        assert!(unpack_u32s(RunCodec::DeltaVarint, &evil, 1).is_err());
        // Bitpacked: zero width and dirty padding bits are rejected.
        assert!(unpack_u32s(RunCodec::BitPacked, &[0, 0xFF], 3).is_err());
        assert!(unpack_u32s(RunCodec::BitPacked, &[3, 0xFF], 2).is_err());
    }

    #[test]
    fn packed_stream_roundtrips_and_tracks_raw_len() {
        let sorted: Vec<u32> = (10..400).collect();
        let wild: Vec<u32> = (0..300)
            .map(|i| (i as u32).wrapping_mul(0x9E3779B9) >> 8)
            .collect();
        let mut w = ByteWriter::new();
        assert_eq!(w.put_packed_u32s(&sorted), RunCodec::DeltaVarint);
        assert_eq!(w.put_packed_u32_vec(&wild), RunCodec::BitPacked);
        assert_eq!(
            w.codec_mask(),
            RunCodec::DeltaVarint.mask_bit() | RunCodec::BitPacked.mask_bit()
        );
        assert!(w.raw_len() > w.len() as u64);
        // Raw equivalent: 4 bytes per value plus the vec's count prefix.
        assert_eq!(w.raw_len(), (sorted.len() + wild.len()) as u64 * 4 + 4);
        let stream = w.into_bytes();
        let (path, fm, len) = stream_file("packed", &stream, 64);
        let pool = BufferPool::new(2);
        let mut r = SegmentReader::new(&pool, &fm, 0, len);
        assert_eq!(r.get_packed_u32s(sorted.len()).unwrap(), sorted);
        assert_eq!(r.get_packed_u32_vec().unwrap(), wild);
        assert_eq!(r.remaining(), 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn scan_reader_prefetches_batches() {
        let stream: Vec<u8> = (0..4096).map(|i| (i % 251) as u8).collect();
        let (path, fm, len) = stream_file("scan", &stream, 64);
        let pool = BufferPool::new(32);
        let mut r = SegmentReader::new_scan(&pool, &fm, 0, len);
        let mut out = vec![0u8; stream.len()];
        r.read_exact(&mut out).unwrap();
        assert_eq!(out, stream);
        let stats = pool.stats();
        // Batched faulting: most pages arrive via prefetch, and the
        // ledger stays honest (prefetch reads are misses, first touches
        // are prefetch hits, not plain hits).
        assert!(stats.prefetched > 0);
        assert!(stats.prefetch_hits > 0);
        assert!(stats.evictions <= stats.misses);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn absurd_length_prefixes_are_rejected() {
        let mut w = ByteWriter::new();
        w.put_u32(u32::MAX); // a length prefix pointing far past the segment
        let stream = w.into_bytes();
        let (path, fm, len) = stream_file("absurd", &stream, 64);
        let pool = BufferPool::new(2);
        let mut r = SegmentReader::new(&pool, &fm, 0, len);
        assert!(r.get_str().is_err());
        let mut r2 = SegmentReader::new(&pool, &fm, 0, len);
        assert!(r2.get_u32_vec().is_err());
        std::fs::remove_file(&path).ok();
    }
}
