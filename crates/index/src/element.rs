//! The element index: qualified name → sorted list of element pres.

use rox_xmldb::{Document, NodeKind, Pre, Symbol};
use std::collections::HashMap;

/// Element index of one document.
///
/// Lists are built in a single preorder scan, so they are duplicate-free
/// and sorted on `pre` — exactly the shape staircase joins expect, which is
/// what lets ROX feed index lookups straight into structural joins.
pub struct ElementIndex {
    by_name: HashMap<Symbol, Vec<Pre>>,
    attr_by_name: HashMap<Symbol, Vec<Pre>>,
    /// All element pres in document order, regardless of name.
    all_elements: Vec<Pre>,
    /// All text node pres in document order.
    all_text: Vec<Pre>,
    /// All attribute node pres in document order.
    all_attributes: Vec<Pre>,
}

impl ElementIndex {
    /// Build the index by scanning the node table once.
    pub fn build(doc: &Document) -> Self {
        let mut by_name: HashMap<Symbol, Vec<Pre>> = HashMap::new();
        let mut attr_by_name: HashMap<Symbol, Vec<Pre>> = HashMap::new();
        let mut all_elements = Vec::new();
        let mut all_text = Vec::new();
        let mut all_attributes = Vec::new();
        for pre in 0..doc.node_count() as Pre {
            match doc.kind(pre) {
                NodeKind::Element => {
                    by_name.entry(doc.name(pre)).or_default().push(pre);
                    all_elements.push(pre);
                }
                NodeKind::Text => all_text.push(pre),
                NodeKind::Attribute => {
                    attr_by_name.entry(doc.name(pre)).or_default().push(pre);
                    all_attributes.push(pre);
                }
                _ => {}
            }
        }
        ElementIndex {
            by_name,
            attr_by_name,
            all_elements,
            all_text,
            all_attributes,
        }
    }

    /// Reassemble an index from its serialized parts (the snapshot decode
    /// path). The name groups arrive as `(symbol, pres)` pairs; order of
    /// the pairs is irrelevant because they land in a `HashMap`, so the
    /// symbol-sorted order the snapshot encoder writes decodes to a
    /// value-equal index.
    pub fn from_parts(
        by_name: Vec<(Symbol, Vec<Pre>)>,
        attr_by_name: Vec<(Symbol, Vec<Pre>)>,
        all_elements: Vec<Pre>,
        all_text: Vec<Pre>,
        all_attributes: Vec<Pre>,
    ) -> Self {
        ElementIndex {
            by_name: by_name.into_iter().collect(),
            attr_by_name: attr_by_name.into_iter().collect(),
            all_elements,
            all_text,
            all_attributes,
        }
    }

    /// The element name groups as `(symbol, pres)` pairs sorted by symbol —
    /// the deterministic serialization order of the snapshot encoder.
    pub fn name_groups(&self) -> Vec<(Symbol, &[Pre])> {
        let mut groups: Vec<(Symbol, &[Pre])> = self
            .by_name
            .iter()
            .map(|(s, v)| (*s, v.as_slice()))
            .collect();
        groups.sort_by_key(|(s, _)| *s);
        groups
    }

    /// The attribute name groups, symbol-sorted like
    /// [`ElementIndex::name_groups`].
    pub fn attr_name_groups(&self) -> Vec<(Symbol, &[Pre])> {
        let mut groups: Vec<(Symbol, &[Pre])> = self
            .attr_by_name
            .iter()
            .map(|(s, v)| (*s, v.as_slice()))
            .collect();
        groups.sort_by_key(|(s, _)| *s);
        groups
    }

    /// `D³ₑₗₜ(q)`: all elements named `q`, sorted on pre. The count is the
    /// slice length — available without touching the nodes.
    pub fn lookup(&self, qname: Symbol) -> &[Pre] {
        self.by_name.get(&qname).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Count of elements named `q` (an O(1) index probe).
    pub fn count(&self, qname: Symbol) -> usize {
        self.lookup(qname).len()
    }

    /// All attributes named `q`, sorted on pre.
    pub fn lookup_attr(&self, qname: Symbol) -> &[Pre] {
        self.attr_by_name
            .get(&qname)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// All elements in document order.
    pub fn elements(&self) -> &[Pre] {
        &self.all_elements
    }

    /// All text nodes in document order.
    pub fn text_nodes(&self) -> &[Pre] {
        &self.all_text
    }

    /// All attribute nodes in document order.
    pub fn attributes(&self) -> &[Pre] {
        &self.all_attributes
    }

    /// Distinct element names present in the document.
    pub fn names(&self) -> impl Iterator<Item = Symbol> + '_ {
        self.by_name.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rox_xmldb::parse_document;

    #[test]
    fn lookup_is_sorted_and_complete() {
        let d = parse_document("t.xml", "<a><b/><c><b>x</b></c><b/></a>").unwrap();
        let idx = ElementIndex::build(&d);
        let b = d.interner().get("b").unwrap();
        let pres = idx.lookup(b);
        assert_eq!(pres.len(), 3);
        assert!(pres.windows(2).all(|w| w[0] < w[1]));
        for &p in pres {
            assert_eq!(d.name_str(p), "b");
        }
        assert_eq!(idx.count(b), 3);
    }

    #[test]
    fn missing_name_is_empty() {
        let d = parse_document("t.xml", "<a/>").unwrap();
        let idx = ElementIndex::build(&d);
        let z = d.interner().intern("zebra");
        assert!(idx.lookup(z).is_empty());
        assert_eq!(idx.count(z), 0);
    }

    #[test]
    fn kind_lists_partition_the_nodes() {
        let d = parse_document("t.xml", r#"<a x="1"><b>t</b><!--c--></a>"#).unwrap();
        let idx = ElementIndex::build(&d);
        assert_eq!(idx.elements().len(), 2); // a, b
        assert_eq!(idx.text_nodes().len(), 1);
        assert_eq!(idx.attributes().len(), 1);
    }

    #[test]
    fn names_enumerates_distinct_qnames() {
        let d = parse_document("t.xml", "<a><b/><b/><c/></a>").unwrap();
        let idx = ElementIndex::build(&d);
        let mut names: Vec<String> = idx.names().map(|s| d.interner().resolve(s)).collect();
        names.sort();
        assert_eq!(names, vec!["a", "b", "c"]);
    }
}
