//! The run-time environment: documents, indices, and per-vertex base
//! lists.
//!
//! A Join Graph vertex denotes a relation of XML nodes ("all elements named
//! q", "all text nodes with value = x", ...). The environment resolves each
//! vertex to its **base list** — the index lookup of §2.2 — lazily and
//! caches it. Base-list *counts* are what Phase 1 of Algorithm 1 seeds
//! `card(v)` with; base-list *samples* seed `S(v)`.

use rox_index::IndexedStore;
use rox_joingraph::{JoinGraph, VertexId, VertexLabel};
use rox_par::Parallelism;
use rox_xmldb::{Catalog, DocId, Document, NodeId, NodeKind, Pre};
use std::collections::HashMap;
use std::sync::Arc;

/// Resolved, cached run-time context for one Join Graph over one catalog.
pub struct RoxEnv {
    store: IndexedStore,
    /// vertex → document id (resolved from the vertex URI).
    vertex_doc: Vec<DocId>,
    /// vertex → cached base list (lazily built).
    base_lists: std::sync::Mutex<HashMap<VertexId, Arc<Vec<Pre>>>>,
    /// Worker-thread budget for full edge executions: the partitioned
    /// staircase/hash joins in [`crate::state`] split their probe inputs
    /// into morsels when this allows more than one thread.
    parallelism: Parallelism,
}

/// An environment construction error (unknown document, ...).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnvError {
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for EnvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "environment error: {}", self.message)
    }
}

impl std::error::Error for EnvError {}

impl std::fmt::Debug for RoxEnv {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RoxEnv")
            .field("vertices", &self.vertex_doc.len())
            .finish()
    }
}

impl RoxEnv {
    /// Resolve every vertex of `graph` against `catalog` (sequential
    /// execution; see [`RoxEnv::with_parallelism`]).
    pub fn new(catalog: Arc<Catalog>, graph: &JoinGraph) -> Result<Self, EnvError> {
        Self::with_parallelism(catalog, graph, Parallelism::Sequential)
    }

    /// As [`RoxEnv::new`] with an explicit worker-thread budget for full
    /// edge executions.
    pub fn with_parallelism(
        catalog: Arc<Catalog>,
        graph: &JoinGraph,
        parallelism: Parallelism,
    ) -> Result<Self, EnvError> {
        let mut vertex_doc = Vec::with_capacity(graph.vertex_count());
        for v in graph.vertices() {
            let id = catalog.resolve(&v.doc_uri).ok_or_else(|| EnvError {
                message: format!("document '{}' is not loaded", v.doc_uri),
            })?;
            vertex_doc.push(id);
        }
        Ok(RoxEnv {
            store: IndexedStore::new(catalog),
            vertex_doc,
            base_lists: std::sync::Mutex::new(HashMap::new()),
            parallelism,
        })
    }

    /// The worker-thread budget for full edge executions.
    pub fn parallelism(&self) -> Parallelism {
        self.parallelism
    }

    /// Change the worker-thread budget (index and base-list caches are
    /// kept, so a warmed environment can be re-used across thread counts —
    /// how the thread-scaling harness amortizes setup).
    pub fn set_parallelism(&mut self, parallelism: Parallelism) {
        self.parallelism = parallelism;
    }

    /// The indexed store.
    pub fn store(&self) -> &IndexedStore {
        &self.store
    }

    /// The document a vertex lives in.
    pub fn doc_id(&self, v: VertexId) -> DocId {
        self.vertex_doc[v as usize]
    }

    /// The document a vertex lives in (loaded).
    pub fn doc(&self, v: VertexId) -> Arc<Document> {
        self.store.doc(self.doc_id(v))
    }

    /// The node kind a vertex's nodes have (for value-join index probes).
    pub fn vertex_kind(label: &VertexLabel) -> NodeKind {
        match label {
            VertexLabel::Root => NodeKind::Document,
            VertexLabel::Element(_) => NodeKind::Element,
            VertexLabel::Text(_) => NodeKind::Text,
            VertexLabel::Attribute(..) => NodeKind::Attribute,
        }
    }

    /// The base list of a vertex: all nodes satisfying its annotation, from
    /// the cheapest index path, sorted on pre. Cached per vertex.
    pub fn base_list(&self, graph: &JoinGraph, v: VertexId) -> Arc<Vec<Pre>> {
        if let Some(cached) = self.base_lists.lock().expect("base list cache").get(&v) {
            return Arc::clone(cached);
        }
        let doc_id = self.doc_id(v);
        let doc = self.store.doc(doc_id);
        let idx = self.store.indexes(doc_id);
        let list: Vec<Pre> = match &graph.vertex(v).label {
            VertexLabel::Root => vec![0],
            VertexLabel::Element(name) => match doc.interner().get(name) {
                Some(sym) => idx.element.lookup(sym).to_vec(),
                None => Vec::new(),
            },
            VertexLabel::Text(None) => idx.element.text_nodes().to_vec(),
            VertexLabel::Text(Some(pred)) => idx.value.select_text(&doc, pred),
            VertexLabel::Attribute(name, pred) => {
                let by_name: Vec<Pre> = match doc.interner().get(name) {
                    Some(sym) => idx.element.lookup_attr(sym).to_vec(),
                    None => Vec::new(),
                };
                match pred {
                    None => by_name,
                    Some(p) => by_name
                        .into_iter()
                        .filter(|&a| p.matches(&doc.value_str(a)))
                        .collect(),
                }
            }
        };
        let list = Arc::new(list);
        self.base_lists
            .lock()
            .expect("base list cache")
            .insert(v, Arc::clone(&list));
        list
    }

    /// Base-list count — the `card(v)` seed (O(1) once cached; an index
    /// count probe either way).
    pub fn base_count(&self, graph: &JoinGraph, v: VertexId) -> usize {
        self.base_list(graph, v).len()
    }

    /// Convert a pre list of vertex `v` into global node ids.
    pub fn to_node_ids(&self, v: VertexId, pres: &[Pre]) -> Vec<NodeId> {
        let doc = self.doc_id(v);
        pres.iter().map(|&p| NodeId::new(doc, p)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rox_joingraph::compile_query;

    fn setup() -> (Arc<Catalog>, JoinGraph) {
        let cat = Arc::new(Catalog::new());
        cat.load_str(
            "d.xml",
            r#"<site><item id="1"><quantity>1</quantity></item><item id="2"><quantity>3</quantity></item></site>"#,
        )
        .unwrap();
        let g = compile_query(r#"for $i in doc("d.xml")//item[./quantity = 1] return $i"#).unwrap();
        (cat, g)
    }

    #[test]
    fn resolves_documents() {
        let (cat, g) = setup();
        let env = RoxEnv::new(cat, &g).unwrap();
        assert_eq!(env.doc_id(0), DocId(0));
    }

    #[test]
    fn unknown_document_errors() {
        let cat = Arc::new(Catalog::new());
        let g = compile_query(r#"for $i in doc("missing.xml")//item return $i"#).unwrap();
        let e = RoxEnv::new(cat, &g).unwrap_err();
        assert!(e.message.contains("missing.xml"));
    }

    #[test]
    fn base_lists_per_label() {
        let (cat, g) = setup();
        let env = RoxEnv::new(cat, &g).unwrap();
        // Find vertices by label.
        for v in g.vertices() {
            let list = env.base_list(&g, v.id);
            match &v.label {
                VertexLabel::Root => assert_eq!(&*list, &vec![0]),
                VertexLabel::Element(n) if n == "item" => assert_eq!(list.len(), 2),
                VertexLabel::Element(n) if n == "quantity" => assert_eq!(list.len(), 2),
                VertexLabel::Text(Some(_)) => assert_eq!(list.len(), 1), // "1"
                other => panic!("unexpected label {other:?}"),
            }
        }
    }

    #[test]
    fn base_list_is_cached() {
        let (cat, g) = setup();
        let env = RoxEnv::new(cat, &g).unwrap();
        let a = env.base_list(&g, 1);
        let b = env.base_list(&g, 1);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn missing_name_gives_empty_base() {
        let cat = Arc::new(Catalog::new());
        cat.load_str("d.xml", "<a/>").unwrap();
        let g = compile_query(r#"for $i in doc("d.xml")//zebra return $i"#).unwrap();
        let env = RoxEnv::new(cat, &g).unwrap();
        let zebra = g.var_vertices["i"];
        assert!(env.base_list(&g, zebra).is_empty());
        assert_eq!(env.base_count(&g, zebra), 0);
    }
}
