//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the small API subset it actually uses: a deterministic seedable
//! RNG ([`rngs::StdRng`]), the [`Rng`]/[`SeedableRng`] traits with
//! `random`/`random_bool`/`random_range`, without-replacement index
//! sampling ([`seq::index::sample`]), and slice `choose`.
//!
//! The generator is SplitMix64-seeded xoshiro256**, which passes the
//! statistical needs of the test-suite (uniform coverage assertions) and is
//! fully deterministic under a fixed seed. It is NOT a drop-in numerical
//! match for crates.io `rand` — only the API shape matches.

/// Low-level entropy source.
pub trait RngCore {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types constructible from raw random bits (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draw one value in the range from `rng`.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end as $wide).wrapping_sub(start as $wide) as u64;
                if span == u64::MAX {
                    return start.wrapping_add(rng.next_u64() as $t);
                }
                start.wrapping_add(uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + f64::from_rng(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range");
        start + f64::from_rng(rng) * (end - start)
    }
}

/// Uniform value in `[0, span)` without modulo bias (rejection sampling).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

/// High-level random value generation.
pub trait Rng: RngCore {
    /// Draw a value of a standard-distribution type (`f64` in `[0,1)`,
    /// uniform integers, fair `bool`).
    fn random<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        f64::from_rng(self) < p
    }

    /// Uniform draw from a range.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256** seeded via
    /// SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Uniform without-replacement index sampling.
    pub mod index {
        use super::super::RngCore;
        use std::collections::HashMap;

        /// A sampled set of indices.
        #[derive(Debug, Clone)]
        pub struct IndexVec(Vec<usize>);

        impl IndexVec {
            /// The indices as a plain vector.
            pub fn into_vec(self) -> Vec<usize> {
                self.0
            }
        }

        impl IntoIterator for IndexVec {
            type Item = usize;
            type IntoIter = std::vec::IntoIter<usize>;
            fn into_iter(self) -> Self::IntoIter {
                self.0.into_iter()
            }
        }

        /// Draw `amount` distinct indices uniformly from `0..length` using a
        /// sparse partial Fisher–Yates shuffle (O(amount) time and space).
        ///
        /// # Panics
        /// Panics when `amount > length` (mirrors crates.io `rand`).
        pub fn sample<R: RngCore + ?Sized>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
            assert!(amount <= length, "cannot sample {amount} of {length}");
            let mut swaps: HashMap<usize, usize> = HashMap::with_capacity(amount);
            let mut out = Vec::with_capacity(amount);
            for i in 0..amount {
                let j = i + super::super::uniform_u64(rng, (length - i) as u64) as usize;
                let vi = swaps.get(&i).copied().unwrap_or(i);
                let vj = swaps.get(&j).copied().unwrap_or(j);
                out.push(vj);
                swaps.insert(j, vi);
            }
            IndexVec(out)
        }
    }

    /// Uniform selection from slices (crates.io `rand`'s `IndexedRandom`).
    pub trait IndexedRandom {
        /// Element type.
        type Item;
        /// A uniformly chosen element, or `None` when empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> IndexedRandom for [T] {
        type Item = T;
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = super::uniform_u64(rng, self.len() as u64);
                self.get(i as usize)
            }
        }
    }

    /// In-place slice randomization (crates.io `rand`'s `SliceRandom`).
    pub trait SliceRandom {
        /// Uniform Fisher–Yates shuffle.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = super::uniform_u64(rng, (i + 1) as u64) as usize;
                self.swap(i, j);
            }
        }
    }
}

/// The customary glob-import surface.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::{IndexedRandom, SliceRandom};
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::rngs::StdRng;

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: f64 = rng.random();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = rng.random_range(3..10);
            assert!((3..10).contains(&v));
            let w = rng.random_range(2..=5);
            assert!((2..=5).contains(&w));
            let f = rng.random_range(1.0..4.0);
            assert!((1.0..4.0).contains(&f));
        }
    }

    #[test]
    fn index_sample_is_distinct_and_complete() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut all = super::seq::index::sample(&mut rng, 50, 50).into_vec();
        all.sort_unstable();
        assert_eq!(all, (0..50).collect::<Vec<_>>());
        let few = super::seq::index::sample(&mut rng, 1000, 10).into_vec();
        let mut dedup = few.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 10);
        assert!(few.iter().all(|&i| i < 1000));
    }

    #[test]
    fn choose_picks_existing_elements() {
        let mut rng = StdRng::seed_from_u64(4);
        let items = [10, 20, 30];
        for _ in 0..100 {
            assert!(items.contains(items.choose(&mut rng).unwrap()));
        }
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn random_bool_rate_is_sane() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
    }
}
