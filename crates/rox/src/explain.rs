//! Human-readable explanations of ROX runs: rendered execution orders,
//! chain-sampling traces (the paper's Table 2 rows) and plan summaries.

use crate::chain::ChainTrace;
use crate::engine::{EngineRun, RunMode};
use crate::guard::CheckKind;
use crate::optimizer::RoxReport;
use crate::state::EdgeExec;
use rox_joingraph::{EdgeId, JoinGraph};
use std::fmt::Write as _;

/// Render one edge as `label <op> label`.
pub fn render_edge(graph: &JoinGraph, e: EdgeId) -> String {
    let edge = graph.edge(e);
    format!(
        "{} {} {}",
        graph.vertex(edge.v1).label,
        edge.kind.symbol(),
        graph.vertex(edge.v2).label
    )
}

/// Render the executed order with per-edge result sizes and the physical
/// operator the kernel chose (the Fig. 3.3/3.4 presentation, extended with
/// the plan-class information of Fig. 6 — NL vs. hash executions are
/// distinguishable per edge).
pub fn render_execution(graph: &JoinGraph, report: &RoxReport) -> String {
    render_order(graph, &report.executed_order, &report.edge_log)
}

/// Shared body of [`render_execution`] and [`render_engine_run`]: one line
/// per executed edge, in execution order.
fn render_order(graph: &JoinGraph, order: &[EdgeId], edge_log: &[EdgeExec]) -> String {
    let mut out = String::new();
    for (i, &e) in order.iter().enumerate() {
        let exec = edge_log.iter().find(|x| x.edge == e);
        let rows = exec.map(|x| x.result_rows).unwrap_or(0);
        let op = exec.map(|x| x.op.label()).unwrap_or("?");
        let _ = writeln!(
            out,
            "{:>3}. {} [{}]  -> {} rows",
            i + 1,
            render_edge(graph, e),
            op,
            rows
        );
    }
    out
}

/// Render an engine run: a header tagging how the plan was obtained —
/// `[optimized]` (fresh Algorithm 1), `[revalidated]` (guarded replay whose
/// spot checks all passed) or `[demoted @k]` (replay abandoned after `k`
/// edges and re-optimized mid-query) — followed by the executed order in
/// the same per-edge format as [`render_execution`]. Breached spot checks
/// are listed under the header with their drift ratios.
pub fn render_engine_run(graph: &JoinGraph, run: &EngineRun) -> String {
    let mut out = String::new();
    match run.mode {
        RunMode::Optimized => {
            let _ = writeln!(out, "run [optimized]");
        }
        RunMode::Revalidated => {
            let _ = writeln!(
                out,
                "run [revalidated] ({} spot-check{})",
                run.spot_checks.len(),
                if run.spot_checks.len() == 1 { "" } else { "s" }
            );
        }
        RunMode::Demoted { at_edge } => {
            let _ = writeln!(out, "run [demoted @{at_edge}]");
        }
    }
    for check in run.spot_checks.iter().filter(|c| c.breached) {
        let kind = match check.kind {
            CheckKind::SampledWeight => "sampled",
            CheckKind::Observed => "observed",
        };
        let _ = writeln!(
            out,
            "     drift on {} ({kind}): expected {:.1}, observed {:.1} (x{:.1})",
            render_edge(graph, check.edge),
            check.expected,
            check.observed,
            check.ratio
        );
    }
    out.push_str(&render_order(graph, &run.executed_order, &run.edge_log));
    out
}

/// Render a chain-sampling trace as the (cost, sf) round table of Table 2.
pub fn render_trace(graph: &JoinGraph, trace: &ChainTrace) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "seed e{} ({}), source v{}",
        trace.seed_edge,
        render_edge(graph, trace.seed_edge),
        trace.source
    );
    for (round, snaps) in trace.rounds.iter().enumerate() {
        let _ = write!(out, "round {:>2}:", round + 1);
        for p in snaps {
            let edges: Vec<String> = p
                .edges
                .iter()
                .zip(&p.ops)
                .map(|(e, op)| format!("e{e}[{}]", op.label()))
                .collect();
            let _ = write!(out, "  ({}: {:.1}, {:.2})", edges.join("·"), p.cost, p.sf);
        }
        let _ = writeln!(out);
    }
    let chosen: Vec<String> = trace.chosen.iter().map(|e| format!("e{e}")).collect();
    let _ = writeln!(
        out,
        "chosen [{}] {}",
        chosen.join("·"),
        if trace.stopped_early {
            "(stopping condition)"
        } else {
            "(exhausted)"
        }
    );
    out
}

/// One-paragraph run summary.
pub fn summarize(report: &RoxReport) -> String {
    format!(
        "{} edges executed, {} result rows; work: {} execution + {} sampling \
         ({:.1}% overhead); wall: {:?} total ({:?} sampling)",
        report.executed_order.len(),
        report.output.len(),
        report.exec_cost.total(),
        report.sample_cost.total(),
        report.sampling_overhead_pct(),
        report.total_wall,
        report.sample_wall,
    )
}

/// One-paragraph durability summary: WAL traffic, group-commit
/// batching, and the recovery replay, from [`crate::engine::EngineStats`].
pub fn render_durability(stats: &crate::engine::EngineStats) -> String {
    let w = &stats.wal;
    let batching = if w.fsyncs == 0 {
        0.0
    } else {
        w.commits as f64 / w.fsyncs as f64
    };
    format!(
        "wal: {} records, {} bytes, lsn {} (durable {}); {} commits over \
         {} fsyncs ({batching:.1} acks/fsync); {} records replayed at recovery",
        w.records, w.bytes, w.last_lsn, w.durable_lsn, w.commits, w.fsyncs, stats.wal_replayed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::{run_rox, RoxOptions};
    use rox_xmldb::Catalog;
    use std::sync::Arc;

    fn setup() -> (JoinGraph, RoxReport) {
        let cat = Arc::new(Catalog::new());
        cat.load_str(
            "d.xml",
            "<site><auction><cheap/><bidder/></auction><auction><bidder/><bidder/></auction></site>",
        )
        .unwrap();
        let g = rox_joingraph::compile_query(
            r#"for $a in doc("d.xml")//auction[./cheap], $b in $a/bidder return $b"#,
        )
        .unwrap();
        let r = run_rox(
            cat,
            &g,
            RoxOptions {
                trace: true,
                tau: 4,
                ..Default::default()
            },
        )
        .unwrap();
        (g, r)
    }

    #[test]
    fn execution_rendering_covers_all_edges() {
        let (g, r) = setup();
        let s = render_execution(&g, &r);
        assert_eq!(s.lines().count(), r.executed_order.len());
        assert!(s.contains("rows"));
    }

    #[test]
    fn trace_rendering_shows_rounds() {
        let (g, r) = setup();
        for t in &r.traces {
            let s = render_trace(&g, t);
            assert!(s.contains("seed"));
            assert!(s.contains("chosen"));
        }
    }

    /// Snapshot: the rendered execution lines carry the kernel's chosen
    /// operator per edge, in a stable format.
    #[test]
    fn execution_rendering_snapshot_with_operators() {
        let cat = Arc::new(Catalog::new());
        cat.load_str(
            "d.xml",
            "<site><auction><bidder/><bidder/></auction><auction><bidder/></auction></site>",
        )
        .unwrap();
        let g = rox_joingraph::compile_query(
            r#"for $a in doc("d.xml")//auction, $b in $a/bidder return $b"#,
        )
        .unwrap();
        let r = run_rox(cat, &g, RoxOptions::default()).unwrap();
        let s = render_execution(&g, &r);
        // One non-redundant edge: auction ◦child bidder, executed as a
        // staircase step producing 3 rows.
        assert_eq!(s, "  1. auction ◦/ bidder [step]  -> 3 rows\n");
    }

    /// Chain traces tag each sampled edge with the operator the kernel
    /// chose for it.
    #[test]
    fn trace_rendering_tags_ops() {
        let (g, r) = setup();
        let mut saw_tag = false;
        for t in &r.traces {
            let s = render_trace(&g, t);
            if s.contains("[step]") || s.contains("[idx-nl]") {
                saw_tag = true;
            }
        }
        assert!(saw_tag, "no operator tag rendered in any trace");
    }

    #[test]
    fn summary_mentions_key_numbers() {
        let (_, r) = setup();
        let s = summarize(&r);
        assert!(s.contains("result rows"));
        assert!(s.contains("overhead"));
    }

    /// The engine-run renderer tags runs with how their plan was obtained:
    /// a cold run renders `[optimized]`, a warm guarded replay renders
    /// `[revalidated]`, and both share the per-edge line format of
    /// `render_execution`.
    #[test]
    fn engine_run_rendering_tags_modes() {
        use crate::engine::{PlanReuse, RoxEngine};

        let cat = Arc::new(Catalog::new());
        cat.load_str(
            "d.xml",
            "<site><auction><bidder/><bidder/></auction><auction><bidder/></auction></site>",
        )
        .unwrap();
        let engine = RoxEngine::new(cat);
        let g = rox_joingraph::compile_query(
            r#"for $a in doc("d.xml")//auction, $b in $a/bidder return $b"#,
        )
        .unwrap();
        let opts = RoxOptions {
            plan_reuse: PlanReuse::ReuseValidated,
            ..Default::default()
        };
        let cold = engine.run(&g, opts).unwrap();
        let warm = engine.run(&g, opts).unwrap();

        let cold_s = render_engine_run(&g, &cold);
        let warm_s = render_engine_run(&g, &warm);
        assert!(cold_s.starts_with("run [optimized]\n"), "{cold_s}");
        assert!(warm_s.starts_with("run [revalidated]"), "{warm_s}");
        // Per-edge lines are byte-identical to the render_execution format.
        assert!(
            warm_s.contains("  1. auction ◦/ bidder [step]  -> 3 rows\n"),
            "{warm_s}"
        );
    }
}
