//! Reproduces **Table 2** and **Fig. 3**: chain-sampling rounds and ROX
//! execution orders for Q1 (`current < P`) and Qm1 (`current > P`).
//!
//! ```text
//! cargo run --release -p rox-bench --bin table2_chain -- \
//!     [--auctions 400] [--threshold 145] [--tau 100] [--seed 42] [--explain]
//! ```

use rox_bench::args::Args;
use rox_bench::table2::{self, render_edge, Table2Config, VariantResult};
use rox_datagen::XmarkConfig;

fn print_variant(v: &VariantResult, explain: bool) {
    println!("==== {} ====", v.name);
    if explain {
        println!("--- Join Graph ---\n{}", v.graph.dump());
    }
    println!("--- chain-sampling rounds (deepest exploration) ---");
    match v.deepest_trace() {
        None => println!("(no multi-branch exploration was needed)"),
        Some(trace) => {
            println!(
                "seed edge e{} ({}), source v{}",
                trace.seed_edge,
                render_edge(&v.graph, trace.seed_edge),
                trace.source
            );
            for (round, snaps) in trace.rounds.iter().enumerate() {
                print!("round {:>2}: ", round + 1);
                let cells: Vec<String> = snaps
                    .iter()
                    .map(|p| {
                        format!(
                            "p[{}]=({:.1}, {:.2})",
                            p.edges
                                .iter()
                                .map(|e| format!("e{e}"))
                                .collect::<Vec<_>>()
                                .join(","),
                            p.cost,
                            p.sf
                        )
                    })
                    .collect();
                println!("{}", cells.join("  "));
            }
            println!(
                "chosen path: [{}]{}",
                trace
                    .chosen
                    .iter()
                    .map(|e| format!("e{e}"))
                    .collect::<Vec<_>>()
                    .join(","),
                if trace.stopped_early {
                    " (stopping condition fired)"
                } else {
                    " (exhausted)"
                }
            );
        }
    }
    println!("--- execution order (Fig. 3.3/3.4 analogue) ---");
    for (i, line) in v.render_order().iter().enumerate() {
        println!("{:>3}. {}", i + 1, line);
    }
    println!(
        "result rows: {} | exec work: {} | sampling work: {} | sampling overhead: {:.1}%",
        v.report.output.len(),
        v.report.exec_cost.total(),
        v.report.sample_cost.total(),
        v.report.sampling_overhead_pct()
    );
    println!();
}

fn main() {
    let args = Args::from_env();
    let cfg = Table2Config {
        xmark: XmarkConfig {
            persons: args.get("persons", 500),
            items: args.get("items", 400),
            auctions: args.get("auctions", 400),
            ..XmarkConfig::default()
        },
        threshold: args.get("threshold", 145.0),
        tau: args.get("tau", 100),
        seed: args.get("seed", 42),
    };
    println!(
        "Table 2 reproduction — XMark-like doc ({} auctions, threshold {})\n",
        cfg.xmark.auctions, cfg.threshold
    );
    let (q1, qm1) = table2::run(&cfg);
    let explain = args.has("explain");
    print_variant(&q1, explain);
    print_variant(&qm1, explain);
    println!(
        "Check: the execution orders differ once the correlated bidder branch\n\
         becomes expensive in Qm1 — compare the positions of the bidder/personref\n\
         steps in both orders above (paper Figs. 3.3 vs 3.4)."
    );
}
