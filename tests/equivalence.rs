//! Differential testing: the Join Graph semantics is order-independent,
//! so ROX (any seed), every enumerated plan, and the naive nested-loop
//! oracle must all produce identical results.

use proptest::prelude::*;
use rox_core::{naive_evaluate, run_plan, run_rox, RoxEnv, RoxOptions};
use rox_xmldb::Catalog;
use std::sync::Arc;

/// Generate a random auction-flavoured document as an XML string.
fn doc_strategy() -> impl Strategy<Value = String> {
    (
        prop::collection::vec((0u8..4, 0u8..6, any::<bool>()), 1..25),
        0u8..4,
    )
        .prop_map(|(auctions, _)| {
            let mut s = String::from("<site>");
            for (kind, n, reserved) in auctions {
                match kind {
                    0..=1 => {
                        s.push_str("<auction>");
                        if reserved {
                            s.push_str("<reserve/>");
                        }
                        for i in 0..n {
                            s.push_str(&format!(
                                "<bidder><personref person=\"p{}\"/></bidder>",
                                i % 4
                            ));
                        }
                        s.push_str("</auction>");
                    }
                    2 => {
                        s.push_str(&format!("<person id=\"p{}\"/>", n % 4));
                    }
                    _ => {
                        s.push_str(&format!("<note>txt{}</note>", n % 3));
                    }
                }
            }
            s.push_str("</site>");
            s
        })
}

const QUERIES: [&str; 4] = [
    r#"for $a in doc("d.xml")//auction, $b in $a/bidder return $b"#,
    r#"for $a in doc("d.xml")//auction[./reserve], $b in $a/bidder, $p in $b/personref return $p"#,
    r#"for $r in doc("d.xml")//personref, $p in doc("d.xml")//person
       where $r/@person = $p/@id return $r"#,
    r#"for $a in doc("d.xml")//auction, $n in doc("d.xml")//note return $n"#,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn rox_matches_naive_for_all_queries(xml in doc_strategy(), qi in 0usize..4, seed in 0u64..500) {
        let catalog = Arc::new(Catalog::new());
        catalog.load_str("d.xml", &xml).unwrap();
        let graph = rox_joingraph::compile_query(QUERIES[qi]).unwrap();
        let env = RoxEnv::new(Arc::clone(&catalog), &graph).unwrap();
        let (_, naive_out) = naive_evaluate(&env, &graph);
        let report = run_rox(
            Arc::clone(&catalog),
            &graph,
            RoxOptions { seed, tau: 10, ..Default::default() },
        )
        .unwrap();
        prop_assert_eq!(&report.output, &naive_out, "query {} xml {}", qi, xml);
    }

    #[test]
    fn all_edge_permutations_agree(xml in doc_strategy(), qi in 0usize..4, perm_seed in 0u64..100) {
        use rand::prelude::*;
        use rand::rngs::StdRng;
        let catalog = Arc::new(Catalog::new());
        catalog.load_str("d.xml", &xml).unwrap();
        let graph = rox_joingraph::compile_query(QUERIES[qi]).unwrap();
        let mut edges: Vec<u32> = graph
            .edges()
            .iter()
            .filter(|e| !e.redundant)
            .map(|e| e.id)
            .collect();
        let forward = run_plan(Arc::clone(&catalog), &graph, &edges).unwrap();
        let mut rng = StdRng::seed_from_u64(perm_seed);
        edges.shuffle(&mut rng);
        let shuffled = run_plan(Arc::clone(&catalog), &graph, &edges).unwrap();
        prop_assert_eq!(forward.output, shuffled.output);
    }

    #[test]
    fn rox_is_seed_independent_in_its_result(xml in doc_strategy(), qi in 0usize..4) {
        let catalog = Arc::new(Catalog::new());
        catalog.load_str("d.xml", &xml).unwrap();
        let graph = rox_joingraph::compile_query(QUERIES[qi]).unwrap();
        let a = run_rox(Arc::clone(&catalog), &graph, RoxOptions { seed: 1, tau: 5, ..Default::default() }).unwrap();
        let b = run_rox(Arc::clone(&catalog), &graph, RoxOptions { seed: 999, tau: 200, ..Default::default() }).unwrap();
        // Plans may differ; results must not.
        prop_assert_eq!(a.output, b.output);
    }
}
