//! # Always-on work-stealing worker pool
//!
//! [`WorkerPool`] replaces the per-call `std::thread::scope` fan-out that
//! `rox-par` shipped with through PR 5. Workers are spawned once, park on a
//! condvar while idle, and are woken for two kinds of work:
//!
//! * **jobs** — `'static` closures submitted with [`WorkerPool::execute`]
//!   (the engine's serving path). Each worker owns an injector deque; jobs
//!   are pushed round-robin and idle workers steal from the back of other
//!   workers' deques.
//! * **batches** — scoped, order-preserving [`WorkerPool::par_map`] calls
//!   (the sampling/partitioned-join fan-out path). A batch is advertised on
//!   a shared board; idle workers join in and claim task indices from an
//!   atomic cursor.
//!
//! ## Determinism contract
//!
//! `par_map` writes each result into a slot indexed by task id, so the
//! returned `Vec` is bit-identical to `(0..tasks).map(f).collect()` no
//! matter which threads ran which tasks or in what order. This is the same
//! contract the scoped implementation had; `crates/rox`'s
//! `proptest_parallel` equivalence suite pins it.
//!
//! ## Nested fan-out never deadlocks
//!
//! The thread that calls `par_map` *drives its own batch*: it claims and
//! runs task indices until the cursor is exhausted, with pool workers only
//! helping. A pool worker that executes a task which itself calls `par_map`
//! therefore becomes the driver of the inner batch — it never blocks
//! waiting for a pool slot. Inductively, every batch's cursor is drained by
//! at least its caller, so no cycle of batches can wait on each other.
//!
//! ## Panic containment
//!
//! A panicking `par_map` task is caught with `catch_unwind`, the remaining
//! tasks still run, and the panic is resumed on the *calling* thread (first
//! panicking index wins, deterministically). A panicking `execute` job is
//! caught in the worker loop and dropped; the pool thread survives either
//! way — one bad query can never take down the serving runtime.
//!
//! ## Shutdown
//!
//! Dropping the pool sets a shutdown flag, wakes every worker, and joins
//! all of them (graceful: a worker finishes the job/batch tasks it already
//! claimed). Jobs still sitting in the deques are dropped without running —
//! submitters that need completion signals should arm a drop guard in the
//! job closure (the engine's ticket does exactly that).

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::Parallelism;

/// A `'static` job submitted through [`WorkerPool::execute`].
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Type-erased view of an in-flight `par_map` batch that workers can help
/// drain. Object-safe so batches of any `(T, F)` share one board.
trait BatchWork: Send + Sync {
    /// Claim a helper slot; `false` when the helper cap is reached or the
    /// cursor is already exhausted.
    fn try_join(&self) -> bool;
    /// Claim-and-run task indices until the cursor is exhausted.
    fn run_all(&self);
    /// True when a *new* helper could still claim work: unclaimed tasks
    /// remain **and** the helper cap is not yet reached. Workers park on
    /// `false` — a capped batch must not keep bystanders spinning (on a
    /// box with fewer cores than workers that spin starves the very
    /// threads draining the batch).
    fn joinable(&self) -> bool;
}

/// Shared state of one `par_map` batch.
struct BatchState<T, F> {
    f: F,
    tasks: usize,
    /// Next unclaimed task index (morsel-driven scheduling).
    cursor: AtomicUsize,
    /// Workers that joined this batch; capped so a batch never recruits
    /// more helpers than its thread budget allows.
    helpers: AtomicUsize,
    helper_cap: usize,
    /// Result placement by task index — this is what makes the output
    /// independent of scheduling.
    slots: Vec<Mutex<Option<std::thread::Result<T>>>>,
    done: AtomicUsize,
    done_flag: Mutex<bool>,
    done_cv: Condvar,
}

impl<T, F> BatchState<T, F>
where
    T: Send,
    F: Fn(usize) -> T + Send + Sync,
{
    fn new(tasks: usize, helper_cap: usize, f: F) -> Self {
        BatchState {
            f,
            tasks,
            cursor: AtomicUsize::new(0),
            helpers: AtomicUsize::new(0),
            helper_cap,
            slots: (0..tasks).map(|_| Mutex::new(None)).collect(),
            done: AtomicUsize::new(0),
            done_flag: Mutex::new(false),
            done_cv: Condvar::new(),
        }
    }

    /// Claim one task index and run it. Returns `false` once the cursor is
    /// exhausted. Panics are captured into the slot, never unwound here.
    fn run_one(&self) -> bool {
        let i = self.cursor.fetch_add(1, Ordering::Relaxed);
        if i >= self.tasks {
            return false;
        }
        let result = catch_unwind(AssertUnwindSafe(|| (self.f)(i)));
        *self.slots[i].lock().expect("batch slot") = Some(result);
        if self.done.fetch_add(1, Ordering::AcqRel) + 1 == self.tasks {
            *self.done_flag.lock().expect("batch done flag") = true;
            self.done_cv.notify_all();
        }
        true
    }

    /// True while unclaimed task indices remain.
    fn has_tasks(&self) -> bool {
        self.cursor.load(Ordering::Relaxed) < self.tasks
    }

    /// Block until every task index has completed.
    fn wait_done(&self) {
        let mut flag = self.done_flag.lock().expect("batch done flag");
        while !*flag {
            flag = self.done_cv.wait(flag).expect("batch done flag");
        }
    }
}

impl<T, F> BatchWork for BatchState<T, F>
where
    T: Send,
    F: Fn(usize) -> T + Send + Sync,
{
    fn try_join(&self) -> bool {
        if !self.has_tasks() {
            return false;
        }
        self.helpers
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |h| {
                (h < self.helper_cap).then_some(h + 1)
            })
            .is_ok()
    }

    fn run_all(&self) {
        while self.run_one() {}
    }

    fn joinable(&self) -> bool {
        self.has_tasks() && self.helpers.load(Ordering::Relaxed) < self.helper_cap
    }
}

/// An advertised batch with a retraction id.
struct BatchEntry {
    id: u64,
    work: Arc<dyn BatchWork>,
}

struct Shared {
    /// Per-worker injector deques for `'static` jobs; worker `i` pops its
    /// own deque from the front and steals from others' backs.
    queues: Vec<Mutex<VecDeque<Job>>>,
    /// Board of in-flight `par_map` batches workers can help drain.
    batches: Mutex<Vec<BatchEntry>>,
    next_batch_id: AtomicU64,
    /// Round-robin submission cursor for `execute`.
    next_queue: AtomicUsize,
    /// Lifetime count of task indices routed through `par_map` (including
    /// its sequential fallbacks) — lets callers assert work was dispatched
    /// through this pool even on single-core machines.
    batch_tasks: AtomicU64,
    /// Parking lot. Producers bump state *then* notify while holding the
    /// lock, so a worker that re-checks for work under the lock before
    /// waiting can never miss a wakeup.
    signal: Mutex<()>,
    signal_cv: Condvar,
    shutdown: AtomicBool,
}

impl Shared {
    fn have_work(&self) -> bool {
        self.queues
            .iter()
            .any(|q| !q.lock().expect("job queue").is_empty())
            || self
                .batches
                .lock()
                .expect("batch board")
                .iter()
                .any(|b| b.work.joinable())
    }

    fn notify_one(&self) {
        let _guard = self.signal.lock().expect("pool signal");
        self.signal_cv.notify_one();
    }

    fn notify_all(&self) {
        let _guard = self.signal.lock().expect("pool signal");
        self.signal_cv.notify_all();
    }
}

thread_local! {
    /// Identity of the pool whose worker loop owns this thread (the
    /// `Arc<Shared>` data address), or 0 on non-pool threads.
    static WORKER_OF: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

/// An always-on, work-stealing worker pool. See the module docs for the
/// scheduling, determinism, and shutdown story.
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl WorkerPool {
    /// Spawn a pool with `workers` always-on threads (clamped to at least
    /// one). Workers park when idle; the pool is cheap to keep around.
    pub fn new(workers: usize) -> WorkerPool {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            batches: Mutex::new(Vec::new()),
            next_batch_id: AtomicU64::new(1),
            next_queue: AtomicUsize::new(0),
            batch_tasks: AtomicU64::new(0),
            signal: Mutex::new(()),
            signal_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("rox-worker-{i}"))
                    .spawn(move || worker_loop(shared, i))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool {
            shared,
            handles: Mutex::new(handles),
        }
    }

    /// The process-wide pool used by the free [`crate::par_map`] and by
    /// standalone (non-engine) runs. Sized to the machine's logical core
    /// count, with a floor of two so single-core containers still get one
    /// helper next to the driving thread.
    pub fn shared() -> &'static WorkerPool {
        static SHARED: OnceLock<WorkerPool> = OnceLock::new();
        SHARED.get_or_init(|| WorkerPool::new(Parallelism::Auto.threads().max(2)))
    }

    /// Number of always-on worker threads.
    pub fn workers(&self) -> usize {
        self.shared.queues.len()
    }

    /// Lifetime count of task indices routed through
    /// [`par_map`](Self::par_map), including its sequential fallbacks.
    /// Monotone — callers assert dispatch by comparing before/after.
    pub fn batch_tasks(&self) -> u64 {
        self.shared.batch_tasks.load(Ordering::Relaxed)
    }

    /// True when the calling thread is one of this pool's workers. Callers
    /// use this to avoid blocking a worker on work that only this same pool
    /// can complete (e.g. the engine runs `run_many` inline in that case).
    pub fn on_worker_thread(&self) -> bool {
        WORKER_OF.with(|w| w.get()) == Arc::as_ptr(&self.shared) as usize
    }

    /// Submit a fire-and-forget `'static` job. Jobs are distributed
    /// round-robin across worker deques and stolen by idle workers. If the
    /// pool is already shut down the job runs inline on the caller.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        if self.shared.shutdown.load(Ordering::Acquire) {
            job();
            return;
        }
        let slot = self.shared.next_queue.fetch_add(1, Ordering::Relaxed) % self.workers();
        self.shared.queues[slot]
            .lock()
            .expect("job queue")
            .push_back(Box::new(job));
        self.shared.notify_one();
    }

    /// Order-preserving parallel map over `0..tasks` with a concurrency
    /// budget of `max_threads` (caller + at most `max_threads - 1` pool
    /// helpers). Returns exactly what `(0..tasks).map(f).collect()` would —
    /// see the module docs for the determinism contract.
    ///
    /// The caller drives the batch itself, so this is safe to call from
    /// inside a pool worker (nested fan-out) and falls back to a plain
    /// sequential loop when `max_threads <= 1` or `tasks <= 1`.
    pub fn par_map<T, F>(&self, max_threads: usize, tasks: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Send + Sync,
    {
        if tasks == 0 {
            return Vec::new();
        }
        self.shared
            .batch_tasks
            .fetch_add(tasks as u64, Ordering::Relaxed);
        let max_threads = max_threads.clamp(1, tasks);
        if max_threads == 1 || tasks == 1 {
            return (0..tasks).map(f).collect();
        }

        let state = Arc::new(BatchState::new(tasks, max_threads - 1, f));

        // Advertise the batch to the pool. The board holds `'static` trait
        // objects, so the (scope-bound) batch Arc is lifetime-erased here.
        // Soundness: before returning (or unwinding) we retract the entry
        // and spin until we hold the only remaining Arc, so no worker can
        // touch `f` or the slots after this frame ends.
        let erased: Arc<dyn BatchWork> = unsafe {
            let scoped: Arc<dyn BatchWork + '_> = state.clone();
            std::mem::transmute::<Arc<dyn BatchWork + '_>, Arc<dyn BatchWork + 'static>>(scoped)
        };
        let id = self.shared.next_batch_id.fetch_add(1, Ordering::Relaxed);
        self.shared
            .batches
            .lock()
            .expect("batch board")
            .push(BatchEntry { id, work: erased });
        self.shared.notify_all();

        // Drive the batch from this thread: claim-and-run until the cursor
        // is exhausted, then wait for helpers to finish their in-flight
        // tasks. The driver never parks while unclaimed work remains, which
        // is what makes nested calls deadlock-free.
        state.run_all();
        state.wait_done();

        // Retract and wait out any worker still holding a clone from its
        // board scan (they only hold it long enough to observe the cursor
        // is exhausted).
        self.shared
            .batches
            .lock()
            .expect("batch board")
            .retain(|entry| entry.id != id);
        while Arc::strong_count(&state) > 1 {
            std::hint::spin_loop();
        }

        let state = Arc::into_inner(state).expect("sole batch owner");
        let mut out = Vec::with_capacity(tasks);
        let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
        for slot in state.slots {
            match slot
                .into_inner()
                .expect("batch slot")
                .expect("every task index visited exactly once")
            {
                Ok(value) => out.push(value),
                Err(payload) => {
                    // First panicking index wins, deterministically.
                    if panic.is_none() {
                        panic = Some(payload);
                    }
                }
            }
        }
        if let Some(payload) = panic {
            resume_unwind(payload);
        }
        out
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.notify_all();
        // The drop can run *on a worker thread*: a queued job owning the
        // last `Arc` to a structure that owns the pool (e.g. an engine)
        // gets dropped in the worker loop at shutdown. A thread cannot
        // join itself, so skip it — it is already past its loop's
        // shutdown check and exits on its own right after this drop.
        let myself = std::thread::current().id();
        for handle in self.handles.lock().expect("pool handles").drain(..) {
            if handle.thread().id() != myself {
                let _ = handle.join();
            }
        }
    }
}

fn worker_loop(shared: Arc<Shared>, me: usize) {
    WORKER_OF.with(|w| w.set(Arc::as_ptr(&shared) as usize));
    let workers = shared.queues.len();
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }

        // 1. Own deque, oldest first.
        let job = shared.queues[me].lock().expect("job queue").pop_front();
        if let Some(job) = job {
            // A panicking job must not take down the pool thread; the
            // submitter observes the failure through its own completion
            // guard (e.g. the engine ticket).
            let _ = catch_unwind(AssertUnwindSafe(job));
            continue;
        }

        // 2. Steal from another worker's back.
        let mut stolen = None;
        for off in 1..workers {
            let victim = (me + off) % workers;
            if let Some(job) = shared.queues[victim].lock().expect("job queue").pop_back() {
                stolen = Some(job);
                break;
            }
        }
        if let Some(job) = stolen {
            let _ = catch_unwind(AssertUnwindSafe(job));
            continue;
        }

        // 3. Help an advertised par_map batch.
        let batch = {
            let board = shared.batches.lock().expect("batch board");
            board
                .iter()
                .find(|entry| entry.work.try_join())
                .map(|entry| Arc::clone(&entry.work))
        };
        if let Some(batch) = batch {
            batch.run_all();
            continue;
        }

        // 4. Park. Re-check under the signal lock (producers notify while
        // holding it), with a timeout as a belt-and-suspenders backstop.
        let guard = shared.signal.lock().expect("pool signal");
        if shared.shutdown.load(Ordering::Acquire) || shared.have_work() {
            continue;
        }
        let _ = shared
            .signal_cv
            .wait_timeout(guard, Duration::from_millis(100));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn pooled_par_map_matches_sequential() {
        let pool = WorkerPool::new(3);
        let expect: Vec<usize> = (0..257).map(|i| i * 31 + 7).collect();
        for threads in [1, 2, 4, 8] {
            assert_eq!(pool.par_map(threads, 257, |i| i * 31 + 7), expect);
        }
    }

    #[test]
    fn execute_runs_jobs() {
        let pool = WorkerPool::new(2);
        let hits = Arc::new(AtomicUsize::new(0));
        for _ in 0..16 {
            let hits = Arc::clone(&hits);
            pool.execute(move || {
                hits.fetch_add(1, Ordering::SeqCst);
            });
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while hits.load(Ordering::SeqCst) < 16 {
            assert!(std::time::Instant::now() < deadline, "jobs never ran");
            std::thread::yield_now();
        }
    }

    #[test]
    fn on_worker_thread_is_scoped_to_the_pool() {
        let pool = Arc::new(WorkerPool::new(1));
        assert!(!pool.on_worker_thread());
        let (tx, rx) = std::sync::mpsc::channel();
        let p = Arc::clone(&pool);
        pool.execute(move || {
            tx.send(p.on_worker_thread()).unwrap();
        });
        assert!(rx.recv_timeout(Duration::from_secs(10)).unwrap());
    }
}
