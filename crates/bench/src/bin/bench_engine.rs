//! Engine-serving benchmark binary: cold vs warm query latency,
//! multi-threaded QPS against one shared `RoxEngine`, and the plan-cache
//! hit rate. Writes the machine-readable `BENCH_engine.json` consumed by
//! CI.
//!
//! ```text
//! cargo run --release -p rox-bench --bin bench_engine -- \
//!     [--smoke] [--out BENCH_engine.json] [--persons 3000] [--items 2500] \
//!     [--auctions 2500] [--queries 6] [--tau 100] [--repeats 3] \
//!     [--threads 2,4] [--rounds 8]
//! ```

use rox_bench::args::Args;
use rox_bench::engine::{self, EngineBenchConfig};

fn main() {
    let args = Args::from_env();
    let mut cfg = if args.has("smoke") {
        EngineBenchConfig::smoke()
    } else {
        EngineBenchConfig::default()
    };
    cfg.xmark.persons = args.get("persons", cfg.xmark.persons);
    cfg.xmark.items = args.get("items", cfg.xmark.items);
    cfg.xmark.auctions = args.get("auctions", cfg.xmark.auctions);
    cfg.queries = args.get("queries", cfg.queries);
    cfg.tau = args.get("tau", cfg.tau);
    cfg.repeats = args.get("repeats", cfg.repeats);
    cfg.rounds = args.get("rounds", cfg.rounds);
    let threads: String = args.get("threads", String::new());
    if !threads.is_empty() {
        cfg.threads = threads
            .split(',')
            .map(|t| {
                t.trim()
                    .parse()
                    .expect("--threads wants a comma-separated list")
            })
            .collect();
    }
    let out_path = args.get("out", "BENCH_engine.json".to_string());

    println!(
        "engine serving bench — XMark persons={} items={} auctions={}, {} query shapes, τ={}, {} rounds",
        cfg.xmark.persons, cfg.xmark.items, cfg.xmark.auctions, cfg.queries, cfg.tau, cfg.rounds
    );
    let r = engine::run(&cfg);
    print!("{}", engine::render(&r));

    let json = engine::to_json(&cfg, &r);
    std::fs::write(&out_path, &json).expect("write BENCH_engine.json");
    println!("\nwrote {out_path}");
}
