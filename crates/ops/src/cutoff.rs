//! Cut-off sampled operator execution (§2.3 of the paper).
//!
//! Rather than evaluating an operator on a sample and *then* reducing an
//! exploded result, ROX cuts result generation off at a limit `l` and
//! records the fraction `f` of context tuples processed at that point; the
//! full result cardinality is extrapolated as `|r′| = |r| / f`. [`JoinOut`]
//! carries exactly that bookkeeping for every pair-producing operator.

use crate::cost::Cost;
use crate::pool::ScratchPool;
use rox_xmldb::Pre;

/// Output of a (possibly cut-off) pair-producing join.
#[derive(Debug, Clone)]
pub struct JoinOut<T> {
    /// The produced `(context row, result)` pairs, in context order.
    pub pairs: Vec<(u32, T)>,
    /// Whether result generation was cut off at the limit.
    pub truncated: bool,
    /// Number of context tuples in the input.
    pub ctx_len: usize,
    /// Row id of the last context tuple that was *fully* processed.
    fully_processed: Option<u32>,
}

/// Upper bound on the speculative pair pre-allocation of
/// [`JoinOut::with_limit`] when no cut-off bounds the output — keeps a
/// huge context from reserving a huge buffer it may never fill.
const MAX_PREALLOC_PAIRS: usize = 4096;

impl<T> JoinOut<T> {
    /// Fresh output for a context of `ctx_len` tuples, with pair capacity
    /// reserved up front: `min(limit, ctx_len)` when a cut-off is known
    /// (a heuristic — output is bounded by `limit`, not `ctx_len`, so a
    /// high-fan-out context can still grow the buffer), else `ctx_len`
    /// capped at a sane default.
    pub fn with_limit(ctx_len: usize, limit: Option<usize>) -> Self {
        let cap = limit.unwrap_or(MAX_PREALLOC_PAIRS).min(ctx_len);
        JoinOut {
            pairs: Vec::with_capacity(cap),
            truncated: false,
            ctx_len,
            fully_processed: None,
        }
    }

    /// Fresh output for a context of `ctx_len` tuples (no cut-off known;
    /// see [`JoinOut::with_limit`]).
    pub fn new(ctx_len: usize) -> Self {
        JoinOut::with_limit(ctx_len, None)
    }

    /// As [`JoinOut::with_limit`] over a buffer leased from `buf` (already
    /// empty; capacity is topped up to the same reservation rule). The
    /// caller returns `self.pairs` to its pool when done.
    fn with_limit_buf(ctx_len: usize, limit: Option<usize>, mut buf: Vec<(u32, T)>) -> Self
    where
        T: Copy,
    {
        let cap = limit.unwrap_or(MAX_PREALLOC_PAIRS).min(ctx_len);
        debug_assert!(buf.is_empty());
        if buf.capacity() < cap {
            buf.reserve(cap - buf.len());
        }
        JoinOut {
            pairs: buf,
            truncated: false,
            ctx_len,
            fully_processed: None,
        }
    }

    /// Emit one pair, charging it to `cost`; returns `true` when the limit
    /// has been reached (caller must stop).
    #[inline]
    pub fn emit(&mut self, row: u32, value: T, limit: usize, cost: &mut Cost) -> bool {
        self.pairs.push((row, value));
        cost.charge_out(1);
        if self.pairs.len() >= limit {
            self.truncated = true;
            true
        } else {
            false
        }
    }

    /// Record that the context tuple `row` was fully processed.
    #[inline]
    pub fn ctx_done(&mut self, row: u32) {
        self.fully_processed = Some(row);
    }

    /// The reduction factor `f`: the observed fraction of context tuples
    /// processed. `1.0` for non-truncated runs.
    pub fn reduction_factor(&self) -> f64 {
        if !self.truncated || self.ctx_len == 0 {
            return 1.0;
        }
        // The paper computes f = max(r.rowid) / max(c.rowid); with dense
        // 0-based rows that is (last emitted row + 1) / |ctx|. Preferring
        // the last *fully processed* row (when ahead of the last emitting
        // row) only sharpens the estimate.
        let last_emit = self.pairs.last().map(|(r, _)| *r + 1).unwrap_or(0);
        let last_done = self.fully_processed.map(|r| r + 1).unwrap_or(0);
        let processed = last_emit.max(last_done).max(1);
        (processed as f64 / self.ctx_len as f64).min(1.0)
    }

    /// Extrapolated full-result cardinality `|r| / f`.
    pub fn estimate(&self) -> f64 {
        self.pairs.len() as f64 / self.reduction_factor()
    }

    /// Distinct result values, sorted — the duplicate-free node output of
    /// the staircase join definition.
    pub fn distinct_results(&self) -> Vec<T>
    where
        T: Ord + Copy,
    {
        let mut out: Vec<T> = self.pairs.iter().map(|&(_, v)| v).collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Distinct context rows that produced at least one pair, sorted.
    pub fn distinct_ctx_rows(&self) -> Vec<u32> {
        let mut out: Vec<u32> = self.pairs.iter().map(|&(r, _)| r).collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

impl JoinOut<Pre> {
    /// As [`JoinOut::with_limit`] with the pair buffer leased from `pool`
    /// (when given); the caller hands `self.pairs` back via
    /// [`ScratchPool::give_pairs`] once consumed.
    pub fn with_limit_pooled(
        ctx_len: usize,
        limit: Option<usize>,
        pool: Option<&ScratchPool>,
    ) -> Self {
        match pool {
            Some(pool) => JoinOut::with_limit_buf(ctx_len, limit, pool.lease_pairs()),
            None => JoinOut::with_limit(ctx_len, limit),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn non_truncated_estimate_is_exact() {
        let mut cost = Cost::new();
        let mut out = JoinOut::new(10);
        for i in 0..5u32 {
            assert!(!out.emit(i, i * 10, usize::MAX, &mut cost));
            out.ctx_done(i);
        }
        assert_eq!(out.reduction_factor(), 1.0);
        assert_eq!(out.estimate(), 5.0);
    }

    #[test]
    fn truncated_estimate_extrapolates() {
        let mut cost = Cost::new();
        let mut out = JoinOut::new(100);
        // 20 pairs produced while only the first 10 context tuples were seen.
        for i in 0..10u32 {
            out.emit(i, 0, 20, &mut cost);
            out.emit(i, 1, 20, &mut cost);
            out.ctx_done(i);
        }
        assert!(out.truncated);
        // f = 10/100, estimate = 20 / 0.1 = 200.
        assert_eq!(out.estimate(), 200.0);
    }

    #[test]
    fn distinct_results_dedup_and_sort() {
        let mut cost = Cost::new();
        let mut out = JoinOut::new(3);
        out.emit(0, 9, usize::MAX, &mut cost);
        out.emit(1, 3, usize::MAX, &mut cost);
        out.emit(2, 9, usize::MAX, &mut cost);
        assert_eq!(out.distinct_results(), vec![3, 9]);
        assert_eq!(out.distinct_ctx_rows(), vec![0, 1, 2]);
    }

    #[test]
    fn empty_context_is_safe() {
        let out: JoinOut<u32> = JoinOut::new(0);
        assert_eq!(out.estimate(), 0.0);
        assert_eq!(out.reduction_factor(), 1.0);
    }

    #[test]
    fn capacity_reserved_up_front() {
        // Cut-off known: reserve min(limit, ctx_len) so the sampling path
        // never reallocates.
        let out: JoinOut<u32> = JoinOut::with_limit(1000, Some(64));
        assert!(out.pairs.capacity() >= 64);
        let small: JoinOut<u32> = JoinOut::with_limit(3, Some(64));
        assert!(small.pairs.capacity() >= 3);
        // No cut-off: ctx_len capped at the pre-allocation bound.
        let unbounded: JoinOut<u32> = JoinOut::new(1 << 24);
        assert!(unbounded.pairs.capacity() <= MAX_PREALLOC_PAIRS * 2);
    }
}
