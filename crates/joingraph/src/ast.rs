//! Abstract syntax for the supported XQuery subset: FLWOR expressions
//! whose `for` clauses bind path expressions over documents, with
//! existence/value predicates and conjunctive `where` conditions — the
//! fragment every query in the ROX paper uses.

use rox_xmldb::{CmpOp, Constant};
use std::fmt;

/// A complete query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// `let $v := doc("uri")` bindings.
    pub lets: Vec<LetBinding>,
    /// `for $v in <source><path>` bindings, in clause order.
    pub fors: Vec<ForBinding>,
    /// Conjunctive `where` conditions.
    pub conditions: Vec<Condition>,
    /// The returned variable.
    pub return_var: String,
}

/// `let $var := doc("uri")`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LetBinding {
    /// Variable name without `$`.
    pub var: String,
    /// Document URI.
    pub doc_uri: String,
}

/// `for $var in <source><steps>`.
#[derive(Debug, Clone, PartialEq)]
pub struct ForBinding {
    /// Variable name without `$`.
    pub var: String,
    /// Where the path starts.
    pub source: Source,
    /// The steps of the path.
    pub steps: Vec<Step>,
}

/// The start of a path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Source {
    /// `doc("uri")`.
    Doc(String),
    /// A previously bound variable (`let` or `for`).
    Var(String),
}

/// One XPath step with its predicates.
#[derive(Debug, Clone, PartialEq)]
pub struct Step {
    /// `/` (child) or `//` (descendant).
    pub axis: StepAxis,
    /// The node test.
    pub test: StepTest,
    /// Zero or more bracketed predicates.
    pub predicates: Vec<Predicate>,
}

/// Surface-syntax axes (the abbreviated forms the workloads use).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepAxis {
    /// `/`
    Child,
    /// `//`
    Descendant,
}

/// Surface-syntax node tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepTest {
    /// `name`
    Element(String),
    /// `@name`
    Attribute(String),
    /// `text()`
    Text,
}

/// A bracketed predicate.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// `[./path]` — existence of at least one match.
    Exists(Vec<Step>),
    /// `[./path <op> literal]` — a value comparison on the path result.
    Compare(Vec<Step>, CmpOp, Constant),
}

/// A `where` condition.
#[derive(Debug, Clone, PartialEq)]
pub enum Condition {
    /// `$a/p1 = $b/p2` — a value join between two paths.
    Join(VarPath, CmpOp, VarPath),
    /// `$a/p <op> literal` — a selection.
    Select(VarPath, CmpOp, Constant),
}

/// A path rooted at a variable (`$a/@person`, `$a1/text()`).
#[derive(Debug, Clone, PartialEq)]
pub struct VarPath {
    /// The variable without `$`.
    pub var: String,
    /// Relative steps (may be empty).
    pub steps: Vec<Step>,
}

impl fmt::Display for StepTest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StepTest::Element(n) => f.write_str(n),
            StepTest::Attribute(n) => write!(f, "@{n}"),
            StepTest::Text => f.write_str("text()"),
        }
    }
}

impl fmt::Display for StepAxis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StepAxis::Child => f.write_str("/"),
            StepAxis::Descendant => f.write_str("//"),
        }
    }
}

impl Query {
    /// The documents the query touches, in first-reference order.
    pub fn doc_uris(&self) -> Vec<&str> {
        let mut uris: Vec<&str> = Vec::new();
        for l in &self.lets {
            if !uris.contains(&l.doc_uri.as_str()) {
                uris.push(&l.doc_uri);
            }
        }
        for f in &self.fors {
            if let Source::Doc(u) = &f.source {
                if !uris.contains(&u.as_str()) {
                    uris.push(u);
                }
            }
        }
        uris
    }
}
