//! Table 2 / Fig. 3: chain-sampling traces of Q1 (`current < P`) and Qm1
//! (`current > P`) on the XMark-like document, plus the execution orders
//! ROX picks for both — demonstrating that ROX reacts to the price ↔
//! bidder-count correlation a compile-time optimizer cannot see.

use crate::setup::xmark_catalog;
use rox_core::{run_rox, ChainTrace, RoxOptions, RoxReport};
use rox_datagen::{xmark_query, XmarkConfig};
use rox_joingraph::JoinGraph;
use std::sync::Arc;

/// Configuration.
#[derive(Debug, Clone)]
pub struct Table2Config {
    /// XMark generator settings.
    pub xmark: XmarkConfig,
    /// The price threshold P (paper: 145).
    pub threshold: f64,
    /// ROX sample size.
    pub tau: usize,
    /// Seed for ROX.
    pub seed: u64,
}

impl Default for Table2Config {
    fn default() -> Self {
        Table2Config {
            xmark: XmarkConfig::default(),
            threshold: 145.0,
            tau: 100,
            seed: 42,
        }
    }
}

/// Output of one query variant.
#[derive(Debug)]
pub struct VariantResult {
    /// "Q1" or "Qm1".
    pub name: &'static str,
    /// The compiled Join Graph (for dumping).
    pub graph: JoinGraph,
    /// The full ROX report (traces enabled).
    pub report: RoxReport,
}

impl VariantResult {
    /// The trace with the most rounds — the interesting multi-branch
    /// exploration the paper tabulates.
    pub fn deepest_trace(&self) -> Option<&ChainTrace> {
        self.report.traces.iter().max_by_key(|t| t.rounds.len())
    }

    /// Execution order rendered with edge labels (Fig. 3.3/3.4).
    pub fn render_order(&self) -> Vec<String> {
        self.report
            .executed_order
            .iter()
            .map(|&e| render_edge(&self.graph, e))
            .collect()
    }
}

pub use rox_core::explain::render_edge;

/// Run both variants.
pub fn run(cfg: &Table2Config) -> (VariantResult, VariantResult) {
    let catalog = xmark_catalog(&cfg.xmark);
    let mut out = Vec::new();
    for (name, op) in [("Q1", "<"), ("Qm1", ">")] {
        let graph = rox_joingraph::compile_query(&xmark_query(op, cfg.threshold)).unwrap();
        let report = run_rox(
            Arc::clone(&catalog),
            &graph,
            RoxOptions {
                tau: cfg.tau,
                seed: cfg.seed,
                trace: true,
                ..Default::default()
            },
        )
        .unwrap();
        out.push(VariantResult {
            name,
            graph,
            report,
        });
    }
    let qm1 = out.pop().unwrap();
    let q1 = out.pop().unwrap();
    (q1, qm1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> Table2Config {
        Table2Config {
            xmark: XmarkConfig {
                persons: 150,
                items: 120,
                auctions: 150,
                ..XmarkConfig::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn both_variants_complete_with_traces() {
        let (q1, qm1) = run(&small_cfg());
        assert!(!q1.report.executed_order.is_empty());
        assert!(!qm1.report.executed_order.is_empty());
        assert!(!q1.report.traces.is_empty());
        assert!(q1.deepest_trace().is_some());
    }

    #[test]
    fn variants_see_different_bidder_workloads() {
        // The correlation means Qm1 (> threshold) faces many more bidder
        // matches per auction; ROX's intermediate sizes reflect that.
        let (q1, qm1) = run(&small_cfg());
        let bidder_rows = |v: &VariantResult| {
            v.report
                .edge_log
                .iter()
                .map(|x| x.result_rows as u64)
                .sum::<u64>()
        };
        // Not a strict dominance claim (different plans), but both must do
        // real work and produce plausible totals.
        assert!(bidder_rows(&q1) > 0);
        assert!(bidder_rows(&qm1) > 0);
    }

    #[test]
    fn rendered_orders_mention_graph_labels() {
        let (q1, _) = run(&small_cfg());
        let rendered = q1.render_order();
        assert_eq!(rendered.len(), q1.report.executed_order.len());
        assert!(rendered
            .iter()
            .any(|s| s.contains("open_auction") || s.contains("bidder")));
    }
}
