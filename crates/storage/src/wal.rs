//! The write-ahead log: incremental durability between snapshots.
//!
//! A snapshot persists the whole catalog atomically, but any mutation
//! after it — an invalidation carrying new document content, a reindex,
//! an epoch bump — would be lost on crash. The WAL closes that window:
//! every mutation appends one checksummed, LSN-stamped record and is
//! acknowledged only after the log is fsynced, so recovery can replay
//! the tail on top of the newest snapshot (see [`crate::recovery`]).
//!
//! ## File format
//!
//! A 16-byte header (`"ROXWAL01"`, version `u32`, reserved `u32`)
//! followed by records framed as:
//!
//! | field       | type  | meaning                                |
//! |-------------|-------|----------------------------------------|
//! | payload_len | `u32` | bytes of payload that follow the frame |
//! | crc         | `u32` | CRC-32C of the payload                 |
//! | payload     | bytes | `kind u8` + `lsn u64` + record body    |
//!
//! The scan ([`scan_wal_bytes`]) validates frames in order and stops at
//! the first invalid one — a short length, a CRC mismatch, an unknown
//! kind, or a non-increasing LSN all mean the tail was torn mid-write
//! and everything from there on is discarded (torn-tail detection).
//! LSNs are strictly increasing and never reset, even across log
//! rotations, so "newer" is always a single integer comparison.
//!
//! ## Group commit
//!
//! [`Wal::append`] assigns the LSN and buffers the frame in the OS;
//! [`Wal::commit`] makes it durable. Concurrent committers elect one
//! leader that fsyncs once for every record appended so far; followers
//! wait on a condvar and return as soon as the leader's sync covers
//! their LSN — N acknowledgements per fsync, not one.

use crate::bytes::{ByteReader, ByteWriter, SliceReader};
use crate::error::{Result, StorageError};
use crate::file::retry_transient;
use crate::page::crc32c;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::Path;
use std::sync::{Condvar, Mutex};

/// A log sequence number: strictly increasing across the life of a
/// durable directory, never reset by rotation.
pub type Lsn = u64;

/// File magic leading a WAL file.
pub const WAL_MAGIC: [u8; 8] = *b"ROXWAL01";

/// Current WAL format version.
pub const WAL_VERSION: u32 = 1;

/// Bytes of the WAL file header (magic + version + reserved word).
pub const WAL_HEADER: usize = 16;

/// Frame overhead per record: payload length + CRC-32C.
pub const FRAME_HEADER: usize = 8;

/// Upper bound on one record's payload; anything larger in a frame
/// header means a torn or corrupt frame, not a real record.
const MAX_PAYLOAD: u64 = 1 << 28;

/// The document content a mutation record carries: the encoded column
/// stream plus the interner's *delta* — every symbol interned since the
/// last logged record (`symbol_base` is the id of the first one).
/// Replay re-interns the delta in id order, which reproduces the exact
/// symbol ids the column stream references.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DocPut {
    /// Id of the first symbol in `new_symbols`.
    pub symbol_base: u32,
    /// Symbols interned since the last logged record, in id order.
    pub new_symbols: Vec<String>,
    /// The document's encoded columns (see `crate::snapshot`'s document
    /// segment format — byte-identical to a snapshot's).
    pub doc_bytes: Vec<u8>,
}

/// One WAL record. The `kind` tags in the comments are the on-disk
/// discriminants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// `kind 1` — the first record of every log generation: the epoch
    /// table as of the snapshot this log extends. Replay starts here.
    Checkpoint {
        /// Document epochs at checkpoint time, in catalog order.
        epochs: Vec<(String, u64)>,
    },
    /// `kind 2` — an invalidation of a document that was not resident:
    /// only the epoch moves; stored indexes become unservable.
    EpochBump {
        /// Document URI.
        uri: String,
        /// The document's new epoch.
        epoch: u64,
    },
    /// `kind 3` — an invalidation carrying the new resident content.
    DocInvalidate {
        /// Document URI.
        uri: String,
        /// The document's new epoch.
        epoch: u64,
        /// The new content.
        put: DocPut,
    },
    /// `kind 4` — a reindex: same content protocol as an invalidation
    /// but no epoch bump (plans stay servable).
    DocReindex {
        /// Document URI.
        uri: String,
        /// The content to rebuild indexes from.
        put: DocPut,
    },
}

impl DocPut {
    /// Capture `doc`'s content for the log: encode its columns with the
    /// snapshot's document codec and attach the interner delta the
    /// caller extracted (`symbol_base` = id of `new_symbols[0]`).
    pub fn from_document(
        doc: &rox_xmldb::Document,
        symbol_base: u32,
        new_symbols: Vec<String>,
    ) -> DocPut {
        DocPut {
            symbol_base,
            new_symbols,
            doc_bytes: crate::snapshot::encode_document_bytes(doc),
        }
    }
}

impl WalRecord {
    fn kind(&self) -> u8 {
        match self {
            WalRecord::Checkpoint { .. } => 1,
            WalRecord::EpochBump { .. } => 2,
            WalRecord::DocInvalidate { .. } => 3,
            WalRecord::DocReindex { .. } => 4,
        }
    }
}

fn encode_put(w: &mut ByteWriter, put: &DocPut) {
    w.put_u32(put.symbol_base);
    w.put_u32(put.new_symbols.len() as u32);
    for s in &put.new_symbols {
        w.put_str(s);
    }
    w.put_bytes(&put.doc_bytes);
}

fn decode_put<R: ByteReader>(r: &mut R) -> Result<DocPut> {
    let symbol_base = r.get_u32()?;
    let count = r.get_u32()? as usize;
    let mut new_symbols = Vec::with_capacity(count.min(1 << 16));
    for _ in 0..count {
        new_symbols.push(r.get_str()?);
    }
    Ok(DocPut {
        symbol_base,
        new_symbols,
        doc_bytes: r.get_bytes()?,
    })
}

/// Encode one record as a complete frame (`len` + `crc` + payload).
pub fn encode_frame(lsn: Lsn, record: &WalRecord) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u8(record.kind());
    w.put_u64(lsn);
    match record {
        WalRecord::Checkpoint { epochs } => {
            w.put_u32(epochs.len() as u32);
            for (uri, epoch) in epochs {
                w.put_str(uri);
                w.put_u64(*epoch);
            }
        }
        WalRecord::EpochBump { uri, epoch } => {
            w.put_str(uri);
            w.put_u64(*epoch);
        }
        WalRecord::DocInvalidate { uri, epoch, put } => {
            w.put_str(uri);
            w.put_u64(*epoch);
            encode_put(&mut w, put);
        }
        WalRecord::DocReindex { uri, put } => {
            w.put_str(uri);
            encode_put(&mut w, put);
        }
    }
    let payload = w.into_bytes();
    let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32c(&payload).to_le_bytes());
    frame.extend_from_slice(&payload);
    frame
}

fn decode_payload(payload: &[u8]) -> Result<(Lsn, WalRecord)> {
    let mut r = SliceReader::new(payload);
    let kind = r.get_u8()?;
    let lsn = r.get_u64()?;
    let record = match kind {
        1 => {
            let count = r.get_u32()? as usize;
            let mut epochs = Vec::with_capacity(count.min(1 << 16));
            for _ in 0..count {
                let uri = r.get_str()?;
                epochs.push((uri, r.get_u64()?));
            }
            WalRecord::Checkpoint { epochs }
        }
        2 => WalRecord::EpochBump {
            uri: r.get_str()?,
            epoch: r.get_u64()?,
        },
        3 => WalRecord::DocInvalidate {
            uri: r.get_str()?,
            epoch: r.get_u64()?,
            put: decode_put(&mut r)?,
        },
        4 => WalRecord::DocReindex {
            uri: r.get_str()?,
            put: decode_put(&mut r)?,
        },
        k => return Err(StorageError::Format(format!("unknown WAL record kind {k}"))),
    };
    if r.remaining() != 0 {
        return Err(StorageError::Format(format!(
            "{} trailing bytes after WAL record",
            r.remaining()
        )));
    }
    Ok((lsn, record))
}

/// The WAL file header bytes.
pub fn wal_header_bytes() -> [u8; WAL_HEADER] {
    let mut h = [0u8; WAL_HEADER];
    h[..8].copy_from_slice(&WAL_MAGIC);
    h[8..12].copy_from_slice(&WAL_VERSION.to_le_bytes());
    h
}

/// What a WAL scan found: every intact record in order, how many bytes
/// of the file they cover, and whether a torn tail follows them.
#[derive(Debug)]
pub struct WalScan {
    /// Every valid record, in LSN order.
    pub records: Vec<(Lsn, WalRecord)>,
    /// Bytes covered by the header plus the valid records — recovery
    /// truncates the file back to this length.
    pub valid_len: u64,
    /// Total bytes scanned.
    pub file_len: u64,
}

impl WalScan {
    /// Bytes of torn tail discarded by the scan.
    pub fn torn_tail_bytes(&self) -> u64 {
        self.file_len - self.valid_len
    }

    /// The last valid record's LSN (0 when the log holds none).
    pub fn last_lsn(&self) -> Lsn {
        self.records.last().map_or(0, |(lsn, _)| *lsn)
    }
}

/// Scan an in-memory WAL image: validate the header, then accept
/// records until the first invalid frame (torn-tail detection). A bad
/// *header* is an error — that file was never a WAL; a bad *record* is
/// normal crash debris and just ends the scan.
pub fn scan_wal_bytes(bytes: &[u8]) -> Result<WalScan> {
    if bytes.len() < WAL_HEADER || bytes[..8] != WAL_MAGIC {
        return Err(StorageError::Format(
            "not a ROX write-ahead log (bad magic)".to_string(),
        ));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version != WAL_VERSION {
        return Err(StorageError::Format(format!(
            "unsupported WAL version {version} (expected {WAL_VERSION})"
        )));
    }
    let mut records = Vec::new();
    let mut at = WAL_HEADER;
    let mut last_lsn = 0u64;
    while bytes.len() - at >= FRAME_HEADER {
        let len = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap()) as u64;
        let crc = u32::from_le_bytes(bytes[at + 4..at + 8].try_into().unwrap());
        if len == 0 || len > MAX_PAYLOAD || len > (bytes.len() - at - FRAME_HEADER) as u64 {
            break;
        }
        let payload = &bytes[at + FRAME_HEADER..at + FRAME_HEADER + len as usize];
        if crc32c(payload) != crc {
            break;
        }
        let Ok((lsn, record)) = decode_payload(payload) else {
            break;
        };
        if lsn <= last_lsn {
            break;
        }
        last_lsn = lsn;
        records.push((lsn, record));
        at += FRAME_HEADER + len as usize;
    }
    Ok(WalScan {
        records,
        valid_len: at as u64,
        file_len: bytes.len() as u64,
    })
}

/// Scan the WAL file at `path` (see [`scan_wal_bytes`]).
pub fn scan_wal(path: &Path) -> Result<WalScan> {
    let bytes = retry_transient(|| std::fs::read(path))?;
    scan_wal_bytes(&bytes)
}

/// Append-and-sync access to one log file. The extra indirection over
/// [`std::fs::File`] exists for the fault-injection layer
/// ([`crate::failpoint::FailpointFile`]) to interpose short writes,
/// torn tails and fsync lies at seeded crash points.
pub trait WalFile: Send {
    /// Append `bytes` at the end of the file.
    fn append(&mut self, bytes: &[u8]) -> std::io::Result<()>;
    /// Make everything appended so far durable.
    fn sync(&mut self) -> std::io::Result<()>;
}

/// The filesystem operations durable directories are built from.
/// Implemented by [`StdWalIo`] for real storage and by
/// [`crate::failpoint::FailpointIo`] for the torture harness.
pub trait WalIo: Send + Sync {
    /// Create (truncate) the file at `path` for appending.
    fn create(&self, path: &Path) -> std::io::Result<Box<dyn WalFile>>;
    /// Open the existing file at `path` for appending, first truncating
    /// it to `len` bytes (recovery cutting off a torn tail).
    fn open_append(&self, path: &Path, len: u64) -> std::io::Result<Box<dyn WalFile>>;
    /// Atomically rename `from` over `to`.
    fn rename(&self, from: &Path, to: &Path) -> std::io::Result<()>;
    /// Fsync the directory itself so renames and creations survive
    /// power failure.
    fn sync_dir(&self, dir: &Path) -> std::io::Result<()>;
}

/// Real filesystem I/O: buffered appends with transient-error retry,
/// real fsyncs.
pub struct StdWalIo;

struct StdWalFile(File);

impl WalFile for StdWalFile {
    fn append(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        // Not `retry_transient(|| write_all(..))`: `write_all` can fail
        // transiently after consuming a partial prefix, and re-running
        // it would write that prefix twice, corrupting the log framing.
        // Retry single `write` calls and resume from the partial offset.
        let mut written = 0;
        while written < bytes.len() {
            match retry_transient(|| self.0.write(&bytes[written..])) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::WriteZero,
                        "wal append made no progress",
                    ))
                }
                Ok(n) => written += n,
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    fn sync(&mut self) -> std::io::Result<()> {
        retry_transient(|| self.0.sync_data())
    }
}

impl WalIo for StdWalIo {
    fn create(&self, path: &Path) -> std::io::Result<Box<dyn WalFile>> {
        Ok(Box::new(StdWalFile(retry_transient(|| {
            File::create(path)
        })?)))
    }

    fn open_append(&self, path: &Path, len: u64) -> std::io::Result<Box<dyn WalFile>> {
        let file = retry_transient(|| OpenOptions::new().write(true).read(true).open(path))?;
        file.set_len(len)?;
        // `append` writes go through `write_all` after an explicit seek
        // to the (now truncated) end.
        use std::io::{Seek, SeekFrom};
        let mut file = file;
        file.seek(SeekFrom::Start(len))?;
        Ok(Box::new(StdWalFile(file)))
    }

    fn rename(&self, from: &Path, to: &Path) -> std::io::Result<()> {
        retry_transient(|| std::fs::rename(from, to))
    }

    fn sync_dir(&self, dir: &Path) -> std::io::Result<()> {
        retry_transient(|| File::open(dir))?.sync_all()
    }
}

/// Counters and water marks of one [`Wal`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Records appended in the current log generation (including its
    /// leading checkpoint record).
    pub records: u64,
    /// Bytes in the current log generation, header included.
    pub bytes: u64,
    /// Fsyncs issued — with group commit this is ≤ `commits`.
    pub fsyncs: u64,
    /// Commit calls acknowledged.
    pub commits: u64,
    /// Highest LSN appended.
    pub last_lsn: Lsn,
    /// Highest LSN known durable.
    pub durable_lsn: Lsn,
}

struct FileSlot {
    file: Box<dyn WalFile>,
    next_lsn: Lsn,
    records: u64,
    bytes: u64,
    /// A failed append or sync leaves the log in an unknown state; the
    /// only safe continuation is recovery, so everything after errors.
    poisoned: bool,
}

struct Book {
    durable_lsn: Lsn,
    last_lsn: Lsn,
    syncing: bool,
    failed: bool,
    fsyncs: u64,
    commits: u64,
}

/// The append/commit half of the log (the scan half is [`scan_wal`]).
/// Thread-safe: appends serialize on the file, commits group-fsync.
pub struct Wal {
    slot: Mutex<FileSlot>,
    book: Mutex<Book>,
    cv: Condvar,
}

impl Wal {
    /// Wrap an open log file. `last_lsn` is the highest LSN already in
    /// it (appends continue at `last_lsn + 1`, which is also already
    /// durable), `records`/`bytes` seed the stats counters.
    pub fn open(file: Box<dyn WalFile>, last_lsn: Lsn, records: u64, bytes: u64) -> Self {
        Wal {
            slot: Mutex::new(FileSlot {
                file,
                next_lsn: last_lsn + 1,
                records,
                bytes,
                poisoned: false,
            }),
            book: Mutex::new(Book {
                durable_lsn: last_lsn,
                last_lsn,
                syncing: false,
                failed: false,
                fsyncs: 0,
                commits: 0,
            }),
            cv: Condvar::new(),
        }
    }

    /// Append one record, assigning it the next LSN. The record is in
    /// the OS buffer after this returns — call [`Wal::commit`] before
    /// acknowledging the mutation to anyone.
    pub fn append(&self, record: &WalRecord) -> Result<Lsn> {
        let mut slot = self.slot.lock().expect("wal slot lock");
        if slot.poisoned {
            return Err(StorageError::Format(
                "write-ahead log poisoned by an earlier I/O failure".to_string(),
            ));
        }
        let lsn = slot.next_lsn;
        let frame = encode_frame(lsn, record);
        if let Err(e) = slot.file.append(&frame) {
            slot.poisoned = true;
            self.fail_waiters();
            return Err(e.into());
        }
        slot.next_lsn += 1;
        slot.records += 1;
        slot.bytes += frame.len() as u64;
        // The book update must stay inside the slot critical section
        // (slot → book is the lock order, see `fail_waiters`): done
        // after the drop, two appends can publish out of order and
        // regress `last_lsn`, leaving a committer waiting above the
        // mark to re-elect itself leader forever.
        self.book.lock().expect("wal book lock").last_lsn = lsn;
        drop(slot);
        Ok(lsn)
    }

    /// Make every record up to (at least) `lsn` durable, group-
    /// committing with concurrent callers: one elected leader fsyncs
    /// for everyone appended so far, followers wait and return once the
    /// leader's sync covers them. Returns the durable water mark.
    pub fn commit(&self, lsn: Lsn) -> Result<Lsn> {
        let mut book = self.book.lock().expect("wal book lock");
        book.commits += 1;
        loop {
            if book.failed {
                return Err(StorageError::Format(
                    "write-ahead log poisoned by an earlier I/O failure".to_string(),
                ));
            }
            if book.durable_lsn >= lsn {
                return Ok(book.durable_lsn);
            }
            if book.syncing {
                book = self.cv.wait(book).expect("wal book lock");
                continue;
            }
            // Leader: sync everything appended so far.
            book.syncing = true;
            let target = book.last_lsn;
            drop(book);
            let synced = {
                let mut slot = self.slot.lock().expect("wal slot lock");
                slot.file.sync()
            };
            book = self.book.lock().expect("wal book lock");
            book.syncing = false;
            book.fsyncs += 1;
            match synced {
                Ok(()) => {
                    book.durable_lsn = book.durable_lsn.max(target);
                    self.cv.notify_all();
                }
                Err(e) => {
                    book.failed = true;
                    self.slot.lock().expect("wal slot lock").poisoned = true;
                    self.cv.notify_all();
                    return Err(e.into());
                }
            }
        }
    }

    fn fail_waiters(&self) {
        self.book.lock().expect("wal book lock").failed = true;
        self.cv.notify_all();
    }

    /// Swap in a freshly rotated log file whose last record is the
    /// checkpoint at `cp_lsn` and whose length is `bytes` (see
    /// [`crate::recovery::write_checkpoint`]). Counters restart for the
    /// new generation; the LSN sequence does not.
    pub fn install_rotated(&self, file: Box<dyn WalFile>, cp_lsn: Lsn, bytes: u64) {
        let mut slot = self.slot.lock().expect("wal slot lock");
        slot.file = file;
        slot.next_lsn = cp_lsn + 1;
        slot.records = 1;
        slot.bytes = bytes;
        slot.poisoned = false;
        drop(slot);
        let mut book = self.book.lock().expect("wal book lock");
        book.last_lsn = cp_lsn;
        book.durable_lsn = cp_lsn;
        book.failed = false;
        self.cv.notify_all();
    }

    /// Highest LSN appended so far.
    pub fn last_lsn(&self) -> Lsn {
        self.book.lock().expect("wal book lock").last_lsn
    }

    /// Current counters and water marks.
    pub fn stats(&self) -> WalStats {
        let (records, bytes) = {
            let slot = self.slot.lock().expect("wal slot lock");
            (slot.records, slot.bytes)
        };
        let book = self.book.lock().expect("wal book lock");
        WalStats {
            records,
            bytes,
            fsyncs: book.fsyncs,
            commits: book.commits,
            last_lsn: book.last_lsn,
            durable_lsn: book.durable_lsn,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Checkpoint {
                epochs: vec![("a.xml".into(), 0), ("b.xml".into(), 3)],
            },
            WalRecord::EpochBump {
                uri: "a.xml".into(),
                epoch: 1,
            },
            WalRecord::DocInvalidate {
                uri: "b.xml".into(),
                epoch: 4,
                put: DocPut {
                    symbol_base: 7,
                    new_symbols: vec!["price".into(), "chair".into()],
                    doc_bytes: vec![1, 2, 3, 4, 5],
                },
            },
            WalRecord::DocReindex {
                uri: "a.xml".into(),
                put: DocPut {
                    symbol_base: 9,
                    new_symbols: vec![],
                    doc_bytes: vec![9, 9],
                },
            },
        ]
    }

    fn image(records: &[WalRecord]) -> Vec<u8> {
        let mut bytes = wal_header_bytes().to_vec();
        for (i, r) in records.iter().enumerate() {
            bytes.extend_from_slice(&encode_frame(i as u64 + 1, r));
        }
        bytes
    }

    #[test]
    fn records_roundtrip_through_the_frame_codec() {
        let records = sample_records();
        let scan = scan_wal_bytes(&image(&records)).unwrap();
        assert_eq!(scan.torn_tail_bytes(), 0);
        assert_eq!(scan.last_lsn(), records.len() as u64);
        let decoded: Vec<WalRecord> = scan.records.into_iter().map(|(_, r)| r).collect();
        assert_eq!(decoded, records);
    }

    #[test]
    fn scan_stops_at_torn_and_corrupt_tails() {
        let records = sample_records();
        let full = image(&records);
        let whole = scan_wal_bytes(&full).unwrap();

        // Any truncation point recovers exactly the intact prefix: a
        // record survives iff its frame ends at or before the cut.
        let mut ends = Vec::new();
        let mut at = WAL_HEADER as u64;
        for (lsn, r) in &whole.records {
            at += encode_frame(*lsn, r).len() as u64;
            ends.push(at);
        }
        for cut in WAL_HEADER..full.len() {
            let scan = scan_wal_bytes(&full[..cut]).unwrap();
            assert!(scan.valid_len <= cut as u64);
            let intact = ends.iter().filter(|&&e| e <= cut as u64).count();
            assert_eq!(scan.records.len(), intact, "cut at {cut}");
        }

        // A flipped byte in the middle record kills it and its tail.
        let mut corrupt = full.clone();
        let mid = WAL_HEADER + encode_frame(1, &records[0]).len() + FRAME_HEADER + 2;
        corrupt[mid] ^= 0xFF;
        let scan = scan_wal_bytes(&corrupt).unwrap();
        assert_eq!(scan.records.len(), 1);
        assert!(scan.torn_tail_bytes() > 0);
    }

    #[test]
    fn bad_header_is_an_error_not_an_empty_log() {
        assert!(scan_wal_bytes(b"<site>not a log</site>").is_err());
        let mut wrong_version = wal_header_bytes();
        wrong_version[8] = 99;
        assert!(scan_wal_bytes(&wrong_version).is_err());
    }

    #[test]
    fn append_commit_scan_roundtrips_on_disk() {
        let mut path = std::env::temp_dir();
        path.push(format!("rox-wal-roundtrip-{}.rox", std::process::id()));
        let io = StdWalIo;
        let mut file = io.create(&path).unwrap();
        file.append(&wal_header_bytes()).unwrap();
        let wal = Wal::open(file, 0, 0, WAL_HEADER as u64);
        let records = sample_records();
        for r in &records {
            let lsn = wal.append(r).unwrap();
            assert!(wal.commit(lsn).unwrap() >= lsn);
        }
        let stats = wal.stats();
        assert_eq!(stats.records, records.len() as u64);
        assert_eq!(stats.durable_lsn, records.len() as u64);
        assert!(stats.fsyncs >= 1);

        let scan = scan_wal(&path).unwrap();
        assert_eq!(scan.records.len(), records.len());
        assert_eq!(scan.torn_tail_bytes(), 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn concurrent_commits_group_behind_one_fsync() {
        let mut path = std::env::temp_dir();
        path.push(format!("rox-wal-group-{}.rox", std::process::id()));
        let io = StdWalIo;
        let mut file = io.create(&path).unwrap();
        file.append(&wal_header_bytes()).unwrap();
        let wal = Arc::new(Wal::open(file, 0, 0, WAL_HEADER as u64));

        let threads: Vec<_> = (0..8)
            .map(|t| {
                let wal = Arc::clone(&wal);
                std::thread::spawn(move || {
                    for e in 0..16u64 {
                        let lsn = wal
                            .append(&WalRecord::EpochBump {
                                uri: format!("doc-{t}.xml"),
                                epoch: e,
                            })
                            .unwrap();
                        let durable = wal.commit(lsn).unwrap();
                        assert!(durable >= lsn, "ack below committed lsn");
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let stats = wal.stats();
        assert_eq!(stats.records, 128);
        assert_eq!(stats.commits, 128);
        assert_eq!(stats.durable_lsn, 128);
        let scan = scan_wal(&path).unwrap();
        assert_eq!(scan.records.len(), 128);
        std::fs::remove_file(&path).ok();
    }
}
