//! Reproduces **Figure 7**: plan-class quality and sampling overhead when
//! scaling the documents ×1 / ×10 / ×100.
//!
//! ```text
//! cargo run --release -p rox-bench --bin fig7_scaling -- \
//!     [--scales 1,10,100] [--size-factor 0.03] [--per-group 4] [--tau 100] [--seed 17]
//! ```

use rox_bench::args::Args;
use rox_bench::fig7::{self, Fig7Config};

fn main() {
    let args = Args::from_env();
    let scales: Vec<usize> = args
        .get("scales", "1,10".to_string())
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .collect();
    let cfg = Fig7Config {
        scales,
        size_factor: args.get("size-factor", 0.03),
        per_group: args.get("per-group", 4),
        tau: args.get("tau", 100),
        seed: args.get("seed", 17),
    };
    println!(
        "Figure 7 reproduction — scales {:?}, size factor {}, {} combos/group\n",
        cfg.scales, cfg.size_factor, cfg.per_group
    );
    let out = fig7::run(&cfg);
    println!(
        "{:<8} {:<6} {:>7} {:>9} {:>10} {:>10} {:>10} {:>9} {:>9}",
        "scale",
        "group",
        "combos",
        "largest",
        "classical",
        "rox-order",
        "smallest",
        "rox-full",
        "rox-pure"
    );
    for s in &out.scales {
        for g in &s.averages {
            println!(
                "x{:<7} {:<6} {:>7} {:>9.2} {:>10.2} {:>10.2} {:>10.2} {:>9.2} {:>9.2}",
                s.scale,
                g.group,
                g.combos,
                g.largest,
                g.classical,
                g.rox_order,
                g.smallest,
                g.rox_full,
                g.rox_pure
            );
        }
    }
    println!(
        "\nExpected shape (paper): rox-pure stays ≈ optimal at every scale; the\n\
         rox-full premium shrinks as documents grow (fixed-τ sampling amortizes)."
    );
}
