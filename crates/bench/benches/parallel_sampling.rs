//! `parallel_sampling` bench: the candidate-weighting phase of Algorithm 1
//! (every unexecuted edge weighed by an independent cut-off sampled run)
//! at 1, 2, and 4 worker threads over the XMark workload, plus the
//! partitioned staircase join on its own.
//!
//! The sequential/parallel runs weigh identical state and are verified to
//! produce identical weights before timing. Expect ~1x on single-core
//! containers and >=1.5x at 4 threads on real multi-core hardware (the
//! fan-out is embarrassingly parallel; see `fig_scaling_threads` for the
//! full scaling table).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rox_bench::scaling_threads::SamplingWorkload;
use rox_bench::xmark_catalog;
use rox_core::{Parallelism, RoxEnv};
use rox_datagen::{xmark_query, XmarkConfig};
use rox_ops::{step_join, step_join_partitioned, Axis, Cost};
use std::hint::black_box;
use std::sync::Arc;

const TAU: usize = 4096;

fn bench_candidate_sampling(c: &mut Criterion) {
    let catalog = xmark_catalog(&XmarkConfig {
        persons: 3000,
        items: 2500,
        auctions: 2500,
        ..XmarkConfig::default()
    });
    let graph = rox_joingraph::compile_query(&xmark_query("<", 145.0)).unwrap();
    let env = RoxEnv::new(Arc::clone(&catalog), &graph).unwrap();
    let workload = SamplingWorkload::prepare(&env, &graph, TAU, 42);
    let (baseline, _) = workload.weigh(Parallelism::Sequential);

    let mut group = c.benchmark_group("parallel_sampling");
    group.sample_size(10);
    for par in [
        Parallelism::Sequential,
        Parallelism::Threads(2),
        Parallelism::Threads(4),
    ] {
        let (w, _) = workload.weigh(par);
        assert_eq!(w, baseline, "parallel weights must match sequential");
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("threads_{}", par.threads())),
            &par,
            |b, &par| b.iter(|| black_box(workload.weigh(par))),
        );
    }
    group.finish();
}

fn bench_partitioned_step_join(c: &mut Criterion) {
    let catalog = xmark_catalog(&XmarkConfig {
        persons: 4000,
        items: 3000,
        auctions: 3000,
        ..XmarkConfig::default()
    });
    let doc = catalog.doc(rox_xmldb::DocId(0));
    let idx = rox_index::ElementIndex::build(&doc);
    let auctions = idx
        .lookup(doc.interner().get("open_auction").unwrap())
        .to_vec();
    let bidders = idx.lookup(doc.interner().get("bidder").unwrap()).to_vec();
    let mut seq_cost = Cost::new();
    let seq = step_join(
        &doc,
        Axis::Descendant,
        &auctions,
        &bidders,
        None,
        &mut seq_cost,
    );

    let mut group = c.benchmark_group("partitioned_step_join");
    group.sample_size(10);
    group.bench_function("sequential", |b| {
        b.iter(|| {
            black_box(step_join(
                &doc,
                Axis::Descendant,
                &auctions,
                &bidders,
                None,
                &mut Cost::new(),
            ))
        })
    });
    for threads in [2usize, 4] {
        let mut cost = Cost::new();
        let got = step_join_partitioned(
            &doc,
            Axis::Descendant,
            &auctions,
            &bidders,
            Parallelism::Threads(threads),
            &mut cost,
        );
        assert_eq!(
            got.pairs, seq.pairs,
            "partitioned join must match sequential"
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("threads_{threads}")),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    black_box(step_join_partitioned(
                        &doc,
                        Axis::Descendant,
                        &auctions,
                        &bidders,
                        Parallelism::Threads(threads),
                        &mut Cost::new(),
                    ))
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_candidate_sampling, bench_partitioned_step_join
}
criterion_main!(benches);
