//! Inspect ROX's decision process: dump the Join Graph and every
//! chain-sampling trace (rounds, costs, scale factors, stopping
//! condition) for a query over correlated data.
//!
//! ```text
//! cargo run --release --example explain_chain
//! ```

use rox_core::{run_rox, RoxOptions};
use rox_xmldb::Catalog;
use std::sync::Arc;

fn main() {
    // Correlated document: auctions with <cheap/> have 1 bidder, auctions
    // with <exp/> have 8. Starting from `cheap`, the naive min-weight
    // greedy would be happy; chain sampling verifies multiple operators
    // ahead before committing.
    let mut xml = String::from("<site>");
    for i in 0..200 {
        xml.push_str("<auction>");
        if i % 2 == 0 {
            xml.push_str("<cheap/><bidder><ref/></bidder>");
        } else {
            xml.push_str("<exp/>");
            for _ in 0..8 {
                xml.push_str("<bidder><ref/></bidder>");
            }
        }
        xml.push_str("</auction>");
    }
    xml.push_str("</site>");

    let catalog = Arc::new(Catalog::new());
    catalog.load_str("d.xml", &xml).unwrap();
    let graph = rox_joingraph::compile_query(
        r#"for $a in doc("d.xml")//auction[./cheap], $b in $a/bidder, $r in $b/ref return $r"#,
    )
    .unwrap();
    println!("Join Graph:\n{}", graph.dump());

    let report = run_rox(
        catalog,
        &graph,
        RoxOptions {
            tau: 50,
            trace: true,
            ..Default::default()
        },
    )
    .unwrap();

    for (i, t) in report.traces.iter().enumerate() {
        println!("--- chain-sampling phase {} ---", i + 1);
        println!("seed edge e{}, source v{}", t.seed_edge, t.source);
        for (round, snaps) in t.rounds.iter().enumerate() {
            println!("  round {}:", round + 1);
            for p in snaps {
                println!("    path {:?}: cost {:.1}, sf {:.3}", p.edges, p.cost, p.sf);
            }
        }
        println!(
            "  chosen {:?} ({})",
            t.chosen,
            if t.stopped_early {
                "stopping condition"
            } else {
                "exhausted"
            }
        );
    }
    println!(
        "\nexecuted order: {:?}\nresult rows: {}",
        report.executed_order,
        report.output.len()
    );
}
