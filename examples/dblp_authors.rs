//! The paper's §4 workload: authors publishing in four venues, ROX versus
//! the classical compile-time optimizer and the enumerated best/worst
//! join orders.
//!
//! ```text
//! cargo run --release --example dblp_authors [-- <V1> <V2> <V3> <V4>]
//! ```
//! Venue names default to the Fig. 5 combination VLDB ICDE ICIP ADBIS.

use rox_core::{
    analyze_star, classical_join_order, enumerate_join_orders, plan_edges, run_plan_with_env,
    run_rox_with_env, Placement, RoxEnv, RoxOptions,
};
use rox_datagen::{correlation, dblp_query, generate_dblp, group_of, venue_index, DblpConfig};
use rox_xmldb::Catalog;
use std::sync::Arc;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let names: Vec<&str> = if args.len() == 4 {
        args.iter().map(String::as_str).collect()
    } else {
        vec!["VLDB", "ICDE", "ICIP", "ADBIS"]
    };
    let combo = [
        venue_index(names[0]),
        venue_index(names[1]),
        venue_index(names[2]),
        venue_index(names[3]),
    ];

    let catalog = Arc::new(Catalog::new());
    let cfg = DblpConfig {
        size_factor: 0.2,
        ..DblpConfig::default()
    };
    let corpus = generate_dblp(&catalog, &cfg);
    let docs: Vec<_> = combo.iter().map(|&i| corpus.docs[i]).collect();
    println!(
        "venues: {:?}  group {}  correlation C = {:.3}\n",
        names,
        group_of(&combo),
        correlation(&catalog, &docs)
    );

    let graph = rox_joingraph::compile_query(&dblp_query(&combo)).unwrap();
    let star = analyze_star(&graph).expect("4-way author query is a star");
    let env = RoxEnv::new(Arc::clone(&catalog), &graph).unwrap();

    // Enumerate all 18 join orders at their best canonical placement.
    let mut best: Option<(String, u64)> = None;
    let mut worst: Option<(String, u64)> = None;
    for order in enumerate_join_orders(4) {
        for placement in Placement::ALL {
            let edges = plan_edges(&graph, &star, &order, placement);
            let run = run_plan_with_env(&env, &graph, &edges).unwrap();
            let key = (
                format!("{} [{}]", order.name, placement.label()),
                run.cost.total(),
            );
            if best.as_ref().is_none_or(|(_, c)| key.1 < *c) {
                best = Some(key.clone());
            }
            if worst.as_ref().is_none_or(|(_, c)| key.1 > *c) {
                worst = Some(key);
            }
        }
    }
    let (best_name, best_cost) = best.unwrap();
    let (worst_name, worst_cost) = worst.unwrap();

    // The classical baseline (smallest-input-first).
    let classical = classical_join_order(&env, &graph, &star);
    let classical_cost = Placement::ALL
        .iter()
        .map(|&p| {
            let edges = plan_edges(&graph, &star, &classical, p);
            run_plan_with_env(&env, &graph, &edges)
                .unwrap()
                .cost
                .total()
        })
        .min()
        .unwrap();

    // ROX.
    let rox = run_rox_with_env(&env, &graph, RoxOptions::default()).unwrap();
    let rox_pure = run_plan_with_env(&env, &graph, &rox.executed_order).unwrap();

    println!("{:<44} {:>12} {:>8}", "plan", "work", "×best");
    let row = |name: &str, cost: u64| {
        println!(
            "{name:<44} {cost:>12} {:>8.2}",
            cost as f64 / best_cost as f64
        );
    };
    row(&format!("best enumerated: {best_name}"), best_cost);
    row(&format!("worst enumerated: {worst_name}"), worst_cost);
    row(&format!("classical: {}", classical.name), classical_cost);
    row("ROX pure plan (replay, no sampling)", rox_pure.cost.total());
    row(
        "ROX full run (incl. sampling)",
        rox.exec_cost.total() + rox.sample_cost.total(),
    );
    println!(
        "\nresult: {} author bindings appear in all four venues",
        rox.output.len()
    );
}
