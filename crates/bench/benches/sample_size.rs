//! Figure 8 benchmark: ROX runs with τ ∈ {25, 100, 400} — the sampling
//! cost knob.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rox_core::{run_rox_with_env, RoxEnv, RoxOptions};
use rox_datagen::{dblp_query, venue_index};
use std::hint::black_box;
use std::sync::Arc;

fn bench_sample_sizes(c: &mut Criterion) {
    let setup = rox_bench::dblp_catalog(1, 0.1, 21);
    let combo = [
        venue_index("SIGMOD"),
        venue_index("ICDE"),
        venue_index("VLDB"),
        venue_index("EDBT"),
    ];
    let graph = rox_joingraph::compile_query(&dblp_query(&combo)).unwrap();
    let env = RoxEnv::new(Arc::clone(&setup.catalog), &graph).unwrap();
    let mut group = c.benchmark_group("fig8_tau");
    for tau in [25usize, 100, 400] {
        group.bench_with_input(BenchmarkId::from_parameter(tau), &tau, |b, &tau| {
            b.iter(|| {
                black_box(
                    run_rox_with_env(
                        &env,
                        &graph,
                        RoxOptions {
                            tau,
                            seed: 21,
                            ..Default::default()
                        },
                    )
                    .unwrap(),
                )
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_sample_sizes
}
criterion_main!(benches);
