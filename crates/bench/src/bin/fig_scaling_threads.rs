//! Thread-scaling reproduction binary: wall time and speedup of the
//! parallel candidate-sampling phase at increasing worker counts, plus an
//! end-to-end `run_rox` comparison.
//!
//! ```text
//! cargo run --release --bin fig_scaling_threads -- \
//!     --persons 3000 --items 2500 --auctions 2500 --tau 4096 \
//!     --threads 2,4,8 --repeats 3
//! ```

use rox_bench::args::Args;
use rox_bench::scaling_threads::{render, run, ThreadScalingConfig};
use rox_datagen::XmarkConfig;

fn main() {
    let args = Args::from_env();
    let mut cfg = ThreadScalingConfig::default();
    cfg.xmark = XmarkConfig {
        persons: args.get("persons", cfg.xmark.persons),
        items: args.get("items", cfg.xmark.items),
        auctions: args.get("auctions", cfg.xmark.auctions),
        ..cfg.xmark
    };
    cfg.tau = args.get("tau", cfg.tau);
    cfg.repeats = args.get("repeats", cfg.repeats);
    let threads: String = args.get("threads", String::new());
    if !threads.is_empty() {
        cfg.threads = threads
            .split(',')
            .map(|t| {
                t.trim()
                    .parse()
                    .expect("--threads wants a comma-separated list")
            })
            .collect();
    }
    let result = run(&cfg);
    print!("{}", render(&result));
}
