//! The Join Graph (Definition 1 of the paper): an order-independent,
//! edge-labeled graph whose vertices are relations of XML nodes and whose
//! edges are path steps or relational equi-joins.

use rox_ops::Axis;
use rox_xmldb::ValuePredicate;
use std::collections::HashMap;
use std::fmt;

/// Vertex identifier (doubles as the relation attribute id of the
/// fully-joined intermediate).
pub type VertexId = u32;

/// Edge identifier.
pub type EdgeId = u32;

/// The annotation of a Join Graph vertex (Def. 1).
#[derive(Debug, Clone, PartialEq)]
pub enum VertexLabel {
    /// The document root node (there is exactly one per document).
    Root,
    /// Element nodes with a qualified name.
    Element(String),
    /// Text nodes, possibly restricted by a range-selection predicate.
    Text(Option<ValuePredicate>),
    /// Attribute nodes with a qualified name, possibly value-restricted.
    Attribute(String, Option<ValuePredicate>),
}

impl fmt::Display for VertexLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VertexLabel::Root => f.write_str("root"),
            VertexLabel::Element(n) => f.write_str(n),
            VertexLabel::Text(None) => f.write_str("text()"),
            VertexLabel::Text(Some(p)) => write!(f, "text() {p}"),
            VertexLabel::Attribute(n, None) => write!(f, "@{n}"),
            VertexLabel::Attribute(n, Some(p)) => write!(f, "@{n} {p}"),
        }
    }
}

impl VertexLabel {
    /// An injective canonical key for this label: equal keys ⇔ equal
    /// labels. Free-form fragments (names, string literals) are
    /// length-prefixed so no crafted name can collide with the structural
    /// separators, and numeric predicate constants are keyed by their IEEE
    /// bit pattern (`f64::to_bits`), not their lossy decimal rendering.
    ///
    /// This is the label half of the cross-query cache keys: the engine's
    /// base-list cache is keyed by `(DocId, cache_key)` — a vertex's base
    /// list depends on nothing else — and [`JoinGraph::canonical_form`]
    /// embeds the same key per vertex.
    pub fn cache_key(&self) -> String {
        fn pred(out: &mut String, p: &ValuePredicate) {
            use rox_xmldb::Constant;
            out.push_str(&format!("{}", p.op));
            match &p.rhs {
                Constant::Str(s) => out.push_str(&format!("s{}:{s}", s.len())),
                Constant::Num(n) => out.push_str(&format!("n{:016x}", n.to_bits())),
            }
        }
        let mut out = String::new();
        match self {
            VertexLabel::Root => out.push('R'),
            VertexLabel::Element(n) => out.push_str(&format!("E{}:{n}", n.len())),
            VertexLabel::Text(None) => out.push('T'),
            VertexLabel::Text(Some(p)) => {
                out.push('T');
                pred(&mut out, p);
            }
            VertexLabel::Attribute(n, None) => out.push_str(&format!("A{}:{n}", n.len())),
            VertexLabel::Attribute(n, Some(p)) => {
                out.push_str(&format!("A{}:{n}", n.len()));
                pred(&mut out, p);
            }
        }
        out
    }
}

/// A Join Graph vertex.
#[derive(Debug, Clone, PartialEq)]
pub struct Vertex {
    /// Dense id.
    pub id: VertexId,
    /// URI of the owning document (`fn:doc` argument).
    pub doc_uri: String,
    /// The node-set annotation.
    pub label: VertexLabel,
}

/// The operator an edge stands for.
#[derive(Debug, Clone, PartialEq)]
pub enum EdgeKind {
    /// A path step: `v1 ◦axis— v2`, context on the `v1` side as written in
    /// the query. The direction is representational only; the optimizer may
    /// execute the inverse axis from `v2` (§2.1).
    Step(Axis),
    /// A relational (value) equi-join. `inferred` marks the dotted
    /// join-equivalence edges ROX adds for extra ordering freedom (Fig. 4).
    EquiJoin {
        /// True for transitively inferred equivalences.
        inferred: bool,
    },
}

impl EdgeKind {
    /// The physical classification consumed by the edge-operator kernel
    /// ([`rox_ops::edgeop`]) — the single place edge kinds are mapped to
    /// physical operators.
    pub fn class(&self) -> rox_ops::EdgeClass {
        match self {
            EdgeKind::Step(ax) => rox_ops::EdgeClass::Step(*ax),
            EdgeKind::EquiJoin { .. } => rox_ops::EdgeClass::ValueJoin,
        }
    }

    /// Short operator symbol for rendering: `◦axis` for steps, `=` for
    /// equi-joins, `=·` for inferred (dotted) join-equivalence edges.
    pub fn symbol(&self) -> String {
        match self {
            EdgeKind::Step(ax) => format!("◦{}", ax.label()),
            EdgeKind::EquiJoin { inferred: false } => "=".into(),
            EdgeKind::EquiJoin { inferred: true } => "=·".into(),
        }
    }
}

/// A Join Graph edge.
#[derive(Debug, Clone, PartialEq)]
pub struct Edge {
    /// Dense id.
    pub id: EdgeId,
    /// First endpoint (step context side).
    pub v1: VertexId,
    /// Second endpoint (step target side).
    pub v2: VertexId,
    /// Operator.
    pub kind: EdgeKind,
    /// Descendant steps out of a document root are semantically redundant
    /// (every node is a descendant of the root) and "are ignored since
    /// these are not necessary to execute to produce the correct result"
    /// (§3.2).
    pub redundant: bool,
}

impl Edge {
    /// The endpoint opposite to `v`.
    pub fn other(&self, v: VertexId) -> VertexId {
        if self.v1 == v {
            self.v2
        } else {
            debug_assert_eq!(self.v2, v);
            self.v1
        }
    }

    /// Is this a step edge?
    pub fn is_step(&self) -> bool {
        matches!(self.kind, EdgeKind::Step(_))
    }
}

/// The plan tail specification attached to the Join Graph (π, δ, τ, π of
/// Fig. 1), in terms of vertex ids.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TailSpec {
    /// Vertices whose (pairwise) bindings must be deduplicated — the `for`
    /// variables in clause order.
    pub dedup: Vec<VertexId>,
    /// Sort order (document order per variable, major to minor).
    pub sort: Vec<VertexId>,
    /// Output vertex (the `return` variable).
    pub output: VertexId,
}

/// The Join Graph with its tail and variable bindings.
#[derive(Debug, Clone, Default)]
pub struct JoinGraph {
    vertices: Vec<Vertex>,
    edges: Vec<Edge>,
    adjacency: Vec<Vec<EdgeId>>,
    /// `for`/`let` variable → vertex.
    pub var_vertices: HashMap<String, VertexId>,
    /// The plan tail.
    pub tail: TailSpec,
}

impl JoinGraph {
    /// An empty graph.
    pub fn new() -> Self {
        JoinGraph::default()
    }

    /// Add a vertex, returning its id.
    pub fn add_vertex(&mut self, doc_uri: impl Into<String>, label: VertexLabel) -> VertexId {
        let id = self.vertices.len() as VertexId;
        self.vertices.push(Vertex {
            id,
            doc_uri: doc_uri.into(),
            label,
        });
        self.adjacency.push(Vec::new());
        id
    }

    /// Add an edge, returning its id.
    pub fn add_edge(&mut self, v1: VertexId, v2: VertexId, kind: EdgeKind) -> EdgeId {
        let redundant = matches!(
            kind,
            EdgeKind::Step(Axis::Descendant | Axis::DescendantOrSelf)
        ) && matches!(self.vertex(v1).label, VertexLabel::Root);
        let id = self.edges.len() as EdgeId;
        self.edges.push(Edge {
            id,
            v1,
            v2,
            kind,
            redundant,
        });
        self.adjacency[v1 as usize].push(id);
        self.adjacency[v2 as usize].push(id);
        id
    }

    /// The vertex with id `v`.
    pub fn vertex(&self, v: VertexId) -> &Vertex {
        &self.vertices[v as usize]
    }

    /// Replace the label of vertex `v` (used by the compiler to attach
    /// value predicates discovered after the vertex was created).
    pub fn set_vertex_label(&mut self, v: VertexId, label: VertexLabel) {
        self.vertices[v as usize].label = label;
    }

    /// The edge with id `e`.
    pub fn edge(&self, e: EdgeId) -> &Edge {
        &self.edges[e as usize]
    }

    /// All vertices.
    pub fn vertices(&self) -> &[Vertex] {
        &self.vertices
    }

    /// All edges.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Ids of edges incident to `v`.
    pub fn edges_of(&self, v: VertexId) -> &[EdgeId] {
        &self.adjacency[v as usize]
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.vertices.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Is there an edge between `a` and `b` already?
    pub fn has_edge_between(&self, a: VertexId, b: VertexId) -> bool {
        self.adjacency[a as usize]
            .iter()
            .any(|&e| self.edges[e as usize].other(a) == b)
    }

    /// Add the transitive closure of the equi-join equivalence classes as
    /// inferred edges (the dotted edges of Fig. 4). Returns how many edges
    /// were added.
    pub fn close_equijoins(&mut self) -> usize {
        // Union-find over vertices connected by equi-join edges.
        let n = self.vertices.len();
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut Vec<usize>, x: usize) -> usize {
            if parent[x] != x {
                let root = find(parent, parent[x]);
                parent[x] = root;
            }
            parent[x]
        }
        let equi_pairs: Vec<(VertexId, VertexId)> = self
            .edges
            .iter()
            .filter(|e| matches!(e.kind, EdgeKind::EquiJoin { .. }))
            .map(|e| (e.v1, e.v2))
            .collect();
        for &(a, b) in &equi_pairs {
            let (ra, rb) = (find(&mut parent, a as usize), find(&mut parent, b as usize));
            if ra != rb {
                parent[ra] = rb;
            }
        }
        // Group classes and add missing pairs.
        let mut classes: HashMap<usize, Vec<VertexId>> = HashMap::new();
        for &(a, b) in &equi_pairs {
            for v in [a, b] {
                let root = find(&mut parent, v as usize);
                let class = classes.entry(root).or_default();
                if !class.contains(&v) {
                    class.push(v);
                }
            }
        }
        let mut added = 0;
        for class in classes.values() {
            for i in 0..class.len() {
                for j in i + 1..class.len() {
                    if !self.has_edge_between(class[i], class[j]) {
                        self.add_edge(class[i], class[j], EdgeKind::EquiJoin { inferred: true });
                        added += 1;
                    }
                }
            }
        }
        added
    }

    /// Graphviz DOT rendering of the Join Graph (step edges solid, explicit
    /// equi-joins bold, inferred equivalence edges dotted — matching the
    /// visual language of the paper's Fig. 4).
    pub fn to_dot(&self) -> String {
        let mut out =
            String::from("graph joingraph {\n  node [shape=box, fontname=\"monospace\"];\n");
        for v in &self.vertices {
            out.push_str(&format!(
                "  v{} [label=\"{}\\n[{}]\"];\n",
                v.id,
                v.label.to_string().replace('"', "\\\""),
                v.doc_uri
            ));
        }
        for e in &self.edges {
            let (label, style) = match &e.kind {
                EdgeKind::Step(ax) => (ax.label().to_string(), "solid"),
                EdgeKind::EquiJoin { inferred: false } => ("=".to_string(), "bold"),
                EdgeKind::EquiJoin { inferred: true } => ("=".to_string(), "dotted"),
            };
            let extra = if e.redundant { ", color=gray" } else { "" };
            out.push_str(&format!(
                "  v{} -- v{} [label=\"{}\", style={}{}];\n",
                e.v1, e.v2, label, style, extra
            ));
        }
        out.push_str("}\n");
        out
    }

    /// The canonical serialization behind [`JoinGraph::fingerprint`]:
    /// vertices in id order (`doc_uri` length-prefixed +
    /// [`VertexLabel::cache_key`]), edges in id order (endpoints, operator,
    /// redundancy), and the plan tail. Two graphs have equal canonical
    /// forms iff they are the same query shape over the same documents —
    /// exactly the condition under which a cached plan (an edge order over
    /// these edge ids) can be replayed. Variable *names* are deliberately
    /// excluded: the compiler numbers vertices by clause order, so
    /// α-renamed queries canonicalize identically.
    pub fn canonical_form(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for v in &self.vertices {
            write!(
                out,
                "v{}:{}:{}|{};",
                v.id,
                v.doc_uri.len(),
                v.doc_uri,
                v.label.cache_key()
            )
            .unwrap();
        }
        for e in &self.edges {
            let kind = match &e.kind {
                EdgeKind::Step(ax) => format!("s{}", ax.label()),
                EdgeKind::EquiJoin { inferred: false } => "j".to_string(),
                EdgeKind::EquiJoin { inferred: true } => "ji".to_string(),
            };
            write!(
                out,
                "e{}:{}-{}:{}:{};",
                e.id,
                e.v1,
                e.v2,
                kind,
                u8::from(e.redundant)
            )
            .unwrap();
        }
        write!(
            out,
            "t:d{:?}:s{:?}:o{}",
            self.tail.dedup, self.tail.sort, self.tail.output
        )
        .unwrap();
        out
    }

    /// A 64-bit fingerprint of [`JoinGraph::canonical_form`] (FNV-1a; the
    /// workspace is dependency-free by policy). This is the plan-cache
    /// key: a repeat of the same query shape fingerprints identically, so
    /// the engine can replay the previously discovered edge order without
    /// re-optimizing. Collisions are guarded one level up — the cache
    /// stores the canonical form and compares it on every hit. Callers
    /// that already hold the canonical form should hash it directly via
    /// [`fingerprint_of`].
    pub fn fingerprint(&self) -> u64 {
        fingerprint_of(&self.canonical_form())
    }

    /// Human-readable dump (used by `--explain` harness output).
    pub fn dump(&self) -> String {
        let mut out = String::new();
        for v in &self.vertices {
            out.push_str(&format!("v{}: {} [{}]\n", v.id, v.label, v.doc_uri));
        }
        for e in &self.edges {
            let op = match &e.kind {
                EdgeKind::Step(ax) => format!("◦{}", ax.label()),
                EdgeKind::EquiJoin { inferred: false } => "=".to_string(),
                EdgeKind::EquiJoin { inferred: true } => "=(inferred)".to_string(),
            };
            let flag = if e.redundant { " (redundant)" } else { "" };
            out.push_str(&format!("e{}: v{} {} v{}{}\n", e.id, e.v1, op, e.v2, flag));
        }
        out
    }
}

/// FNV-1a 64 over a canonical-form string — the hash behind
/// [`JoinGraph::fingerprint`], exposed so a caller that needs both the
/// canonical form and its fingerprint serializes the graph only once.
pub fn fingerprint_of(canonical: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in canonical.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_vertices_and_edges() {
        let mut g = JoinGraph::new();
        let r = g.add_vertex("d.xml", VertexLabel::Root);
        let a = g.add_vertex("d.xml", VertexLabel::Element("a".into()));
        let e = g.add_edge(r, a, EdgeKind::Step(Axis::Descendant));
        assert_eq!(g.vertex_count(), 2);
        assert_eq!(g.edge_count(), 1);
        assert!(g.edge(e).redundant, "descendant from root is redundant");
        assert_eq!(g.edges_of(a), &[e]);
        assert_eq!(g.edge(e).other(a), r);
    }

    #[test]
    fn child_from_root_is_not_redundant() {
        let mut g = JoinGraph::new();
        let r = g.add_vertex("d.xml", VertexLabel::Root);
        let a = g.add_vertex("d.xml", VertexLabel::Element("a".into()));
        let e = g.add_edge(r, a, EdgeKind::Step(Axis::Child));
        assert!(!g.edge(e).redundant);
    }

    #[test]
    fn equijoin_closure_adds_missing_pairs() {
        let mut g = JoinGraph::new();
        let t1 = g.add_vertex("1.xml", VertexLabel::Text(None));
        let t2 = g.add_vertex("2.xml", VertexLabel::Text(None));
        let t3 = g.add_vertex("3.xml", VertexLabel::Text(None));
        let t4 = g.add_vertex("4.xml", VertexLabel::Text(None));
        // Star: t1=t2, t1=t3, t1=t4 (the DBLP query shape).
        g.add_edge(t1, t2, EdgeKind::EquiJoin { inferred: false });
        g.add_edge(t1, t3, EdgeKind::EquiJoin { inferred: false });
        g.add_edge(t1, t4, EdgeKind::EquiJoin { inferred: false });
        let added = g.close_equijoins();
        // Missing: (t2,t3), (t2,t4), (t3,t4) — exactly the dotted edges of Fig. 4.
        assert_eq!(added, 3);
        assert_eq!(g.edge_count(), 6);
        assert!(g.has_edge_between(t2, t4));
        // Re-closing adds nothing.
        assert_eq!(g.close_equijoins(), 0);
    }

    #[test]
    fn dot_output_is_well_formed() {
        let mut g = JoinGraph::new();
        let t1 = g.add_vertex("1.xml", VertexLabel::Text(None));
        let t2 = g.add_vertex("2.xml", VertexLabel::Text(None));
        let t3 = g.add_vertex("3.xml", VertexLabel::Text(None));
        g.add_edge(t1, t2, EdgeKind::EquiJoin { inferred: false });
        g.add_edge(t2, t3, EdgeKind::EquiJoin { inferred: false });
        g.close_equijoins();
        let dot = g.to_dot();
        assert!(dot.starts_with("graph joingraph {"));
        assert!(dot.ends_with("}\n"));
        assert!(dot.contains("style=bold"));
        assert!(dot.contains("style=dotted"), "closure edge must be dotted");
        assert_eq!(dot.matches(" -- ").count(), 3);
    }

    #[test]
    fn fingerprint_is_stable_and_discriminates() {
        let mut g = JoinGraph::new();
        let r = g.add_vertex("d.xml", VertexLabel::Root);
        let a = g.add_vertex("d.xml", VertexLabel::Element("item".into()));
        g.add_edge(r, a, EdgeKind::Step(Axis::Child));
        let fp = g.fingerprint();
        assert_eq!(fp, g.fingerprint(), "fingerprint must be deterministic");

        // A structurally identical rebuild fingerprints identically.
        let mut g2 = JoinGraph::new();
        let r2 = g2.add_vertex("d.xml", VertexLabel::Root);
        let a2 = g2.add_vertex("d.xml", VertexLabel::Element("item".into()));
        g2.add_edge(r2, a2, EdgeKind::Step(Axis::Child));
        assert_eq!(fp, g2.fingerprint());
        assert_eq!(g.canonical_form(), g2.canonical_form());

        // Different element name, axis, document, or tail all change it.
        let mut g3 = g2.clone();
        g3.set_vertex_label(a2, VertexLabel::Element("other".into()));
        assert_ne!(fp, g3.fingerprint());
        let mut g4 = JoinGraph::new();
        let r4 = g4.add_vertex("d.xml", VertexLabel::Root);
        let a4 = g4.add_vertex("d.xml", VertexLabel::Element("item".into()));
        g4.add_edge(r4, a4, EdgeKind::Step(Axis::Descendant));
        assert_ne!(fp, g4.fingerprint());
        let mut g5 = g2.clone();
        g5.tail.output = a2;
        assert_ne!(fp, g5.fingerprint());
    }

    #[test]
    fn fingerprint_distinguishes_predicate_constants() {
        use rox_xmldb::CmpOp;
        let build = |n: f64| {
            let mut g = JoinGraph::new();
            let r = g.add_vertex("d.xml", VertexLabel::Root);
            let t = g.add_vertex(
                "d.xml",
                VertexLabel::Text(Some(ValuePredicate::num(CmpOp::Lt, n))),
            );
            g.add_edge(r, t, EdgeKind::Step(Axis::Descendant));
            g
        };
        assert_eq!(build(145.0).fingerprint(), build(145.0).fingerprint());
        assert_ne!(build(145.0).fingerprint(), build(146.0).fingerprint());
        // -0.0 and 0.0 differ bitwise and must not alias.
        assert_ne!(build(0.0).fingerprint(), build(-0.0).fingerprint());
    }

    #[test]
    fn cache_key_is_injective_on_tricky_labels() {
        // Length prefixes keep crafted names from colliding with the
        // structural separators.
        let a = VertexLabel::Element("a:b".into()).cache_key();
        let b = VertexLabel::Element("a".into()).cache_key();
        assert_ne!(a, b);
        let t1 = VertexLabel::Text(Some(ValuePredicate::eq_str("x"))).cache_key();
        let t2 = VertexLabel::Text(Some(ValuePredicate::eq_str("y"))).cache_key();
        assert_ne!(t1, t2);
        assert_ne!(
            VertexLabel::Element("text()".into()).cache_key(),
            VertexLabel::Text(None).cache_key()
        );
        assert_ne!(
            VertexLabel::Attribute("x".into(), None).cache_key(),
            VertexLabel::Element("x".into()).cache_key()
        );
    }

    #[test]
    fn dump_mentions_all_parts() {
        let mut g = JoinGraph::new();
        let r = g.add_vertex("d.xml", VertexLabel::Root);
        let a = g.add_vertex("d.xml", VertexLabel::Element("item".into()));
        g.add_edge(r, a, EdgeKind::Step(Axis::Descendant));
        let s = g.dump();
        assert!(s.contains("item"));
        assert!(s.contains("redundant"));
    }
}
