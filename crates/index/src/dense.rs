//! Dense, hash-free data layouts for the join core.
//!
//! Both `Symbol` (interned value id) and `Pre` (node id) are *dense* `u32`
//! identifiers, so every symbol-keyed table and every node-membership set
//! in the hot join paths can be a flat array instead of a general-purpose
//! hash map or a binary-searched sorted slice:
//!
//! * [`SymbolTable`] — a CSR (offsets + values) multimap `Symbol → [Pre]`,
//!   built once per join build side. A lookup is two array reads; no
//!   hashing, no pointer chasing per group.
//! * [`PreSet`] — a fixed-size bitset over `0..node_count`, answering the
//!   membership probes that used to be per-hit `binary_search` calls in
//!   `O(1)` with one shift and mask.
//!
//! Layout invariants both types share with the structures they replace:
//! within one symbol group [`SymbolTable`] preserves *insertion order* of
//! the build input (exactly like `HashMap<Symbol, Vec<Pre>>` pushing per
//! entry), and lookups of symbols beyond the built universe return the
//! empty group — so swapping the hash map for the CSR table is
//! bit-identical, not just equivalent.

use rox_xmldb::{Pre, Symbol};

/// A CSR-layout multimap from [`Symbol`] to the build-side nodes carrying
/// that symbol, indexed directly by `Symbol.0`.
///
/// `offsets` has `universe + 1` entries; group `s` occupies
/// `values[offsets[s]..offsets[s + 1]]`. Symbols at or beyond `universe`
/// were not present in the build input and resolve to the empty slice.
#[derive(Debug, Clone, Default)]
pub struct SymbolTable {
    offsets: Vec<u32>,
    values: Vec<Pre>,
}

impl SymbolTable {
    /// Build the table from `(symbols[i], nodes[i])` pairs with a counting
    /// sort keyed on the symbol: two passes, no hashing. Within one symbol
    /// group the nodes keep their input order (the order a
    /// `HashMap<Symbol, Vec<Pre>>` build loop would have pushed them in).
    ///
    /// `symbols` and `nodes` must have equal length.
    pub fn from_pairs(symbols: &[Symbol], nodes: &[Pre]) -> Self {
        debug_assert_eq!(symbols.len(), nodes.len());
        let universe = symbols.iter().map(|s| s.index() + 1).max().unwrap_or(0);
        let mut offsets = vec![0u32; universe + 1];
        for s in symbols {
            offsets[s.index() + 1] += 1;
        }
        for i in 1..offsets.len() {
            offsets[i] += offsets[i - 1];
        }
        let mut values = vec![0 as Pre; nodes.len()];
        // `cursor[s]` starts at offsets[s] and walks forward; reuse a copy
        // of the prefix sums so the fill stays a single pass.
        let mut cursor = offsets.clone();
        for (s, &p) in symbols.iter().zip(nodes) {
            let at = cursor[s.index()];
            values[at as usize] = p;
            cursor[s.index()] += 1;
        }
        SymbolTable { offsets, values }
    }

    /// Reassemble a table from raw CSR arrays (the snapshot decode path).
    /// Returns `None` — instead of risking a panicking lookup later — when
    /// the arrays are not a well-formed CSR: offsets must be monotone,
    /// start at 0, and end exactly at `values.len()`.
    pub fn from_raw(offsets: Vec<u32>, values: Vec<Pre>) -> Option<Self> {
        if offsets.is_empty() {
            return if values.is_empty() {
                Some(SymbolTable::default())
            } else {
                None
            };
        }
        if offsets[0] != 0
            || *offsets.last().unwrap() as usize != values.len()
            || offsets.windows(2).any(|w| w[0] > w[1])
        {
            return None;
        }
        Some(SymbolTable { offsets, values })
    }

    /// The raw CSR offsets array (`universe + 1` entries; empty for a
    /// default-built table) — the snapshot encode path's payload.
    pub fn offsets(&self) -> &[u32] {
        &self.offsets
    }

    /// The raw CSR values array, parallel to [`SymbolTable::offsets`].
    pub fn values(&self) -> &[Pre] {
        &self.values
    }

    /// The nodes grouped under `sym`, in build order; empty when `sym` was
    /// absent from (or beyond) the build input. Two array reads.
    #[inline]
    pub fn get(&self, sym: Symbol) -> &[Pre] {
        let i = sym.index();
        if i + 1 >= self.offsets.len() {
            return &[];
        }
        &self.values[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Total build-side entries (the investment a join charges for the
    /// build, cached or not).
    #[inline]
    pub fn build_len(&self) -> usize {
        self.values.len()
    }

    /// Number of distinct symbols with at least one entry.
    pub fn distinct_symbols(&self) -> usize {
        self.offsets.windows(2).filter(|w| w[0] != w[1]).count()
    }

    /// Iterate the non-empty `(symbol, group)` pairs in symbol order.
    pub fn groups(&self) -> impl Iterator<Item = (Symbol, &[Pre])> {
        self.offsets
            .windows(2)
            .enumerate()
            .filter(|(_, w)| w[0] != w[1])
            .map(|(i, w)| (Symbol(i as u32), &self.values[w[0] as usize..w[1] as usize]))
    }
}

/// A fixed-size bitset over the dense node-id space `0..universe`.
///
/// Replaces sorted-slice `binary_search` membership probes on the hot join
/// paths. Probes at or beyond `universe` answer `false` (mirroring "not in
/// the slice"), so a set built from one node list is safe to probe with
/// any node id.
#[derive(Debug, Clone, Default)]
pub struct PreSet {
    words: Vec<u64>,
    len: usize,
}

impl PreSet {
    /// An empty set able to hold nodes `0..universe`.
    pub fn new(universe: usize) -> Self {
        PreSet {
            words: vec![0; universe.div_ceil(64)],
            len: 0,
        }
    }

    /// Build a set from a node list (any order, duplicates allowed) over
    /// `0..universe`; `universe` must exceed every listed node.
    pub fn from_nodes(universe: usize, nodes: &[Pre]) -> Self {
        let mut set = PreSet::new(universe);
        for &p in nodes {
            set.insert(p);
        }
        set
    }

    /// Clear the set and resize it for a new universe, keeping the word
    /// buffer's allocation when it already fits — the reuse hook of the
    /// scratch pool (`rox_ops::pool`). Bit-identical to a fresh
    /// [`PreSet::new`]`(universe)`.
    pub fn reset(&mut self, universe: usize) {
        let words = universe.div_ceil(64);
        self.words.clear();
        self.words.resize(words, 0);
        self.len = 0;
    }

    /// Reset to `universe` and insert every node of `nodes` — the pooled
    /// counterpart of [`PreSet::from_nodes`].
    pub fn reset_from_nodes(&mut self, universe: usize, nodes: &[Pre]) {
        self.reset(universe);
        for &p in nodes {
            self.insert(p);
        }
    }

    /// Insert one node. The node must lie below the construction universe.
    #[inline]
    pub fn insert(&mut self, p: Pre) {
        let word = &mut self.words[(p / 64) as usize];
        let bit = 1u64 << (p % 64);
        self.len += usize::from(*word & bit == 0);
        *word |= bit;
    }

    /// Membership probe: one shift and mask; out-of-universe ids are
    /// absent by definition.
    #[inline]
    pub fn contains(&self, p: Pre) -> bool {
        self.words
            .get((p / 64) as usize)
            .is_some_and(|w| w & (1u64 << (p % 64)) != 0)
    }

    /// Number of distinct members.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Retained allocation of the word buffer, in 64-bit words (the
    /// size-bounding metric of the scratch pool).
    #[inline]
    pub fn word_capacity(&self) -> usize {
        self.words.capacity()
    }

    /// Is the set empty?
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn syms(raw: &[u32]) -> Vec<Symbol> {
        raw.iter().copied().map(Symbol).collect()
    }

    #[test]
    fn csr_groups_preserve_build_order() {
        let symbols = syms(&[3, 1, 3, 1, 3]);
        let nodes: Vec<Pre> = vec![10, 20, 30, 40, 50];
        let t = SymbolTable::from_pairs(&symbols, &nodes);
        assert_eq!(t.get(Symbol(3)), &[10, 30, 50]);
        assert_eq!(t.get(Symbol(1)), &[20, 40]);
        assert_eq!(t.get(Symbol(0)), &[] as &[Pre]);
        assert_eq!(t.get(Symbol(99)), &[] as &[Pre]);
        assert_eq!(t.build_len(), 5);
        assert_eq!(t.distinct_symbols(), 2);
    }

    #[test]
    fn csr_empty_universe() {
        let t = SymbolTable::from_pairs(&[], &[]);
        assert_eq!(t.get(Symbol(0)), &[] as &[Pre]);
        assert_eq!(t.get(Symbol::EMPTY), &[] as &[Pre]);
        assert_eq!(t.build_len(), 0);
        assert_eq!(t.distinct_symbols(), 0);
        assert_eq!(t.groups().count(), 0);
    }

    #[test]
    fn csr_max_symbol_at_boundary() {
        // The largest symbol sits exactly at the end of the offsets array.
        let t = SymbolTable::from_pairs(&syms(&[u16::MAX as u32]), &[7]);
        assert_eq!(t.get(Symbol(u16::MAX as u32)), &[7]);
        assert_eq!(t.get(Symbol(u16::MAX as u32 + 1)), &[] as &[Pre]);
    }

    #[test]
    fn csr_groups_iterate_in_symbol_order() {
        let t = SymbolTable::from_pairs(&syms(&[5, 2, 5]), &[1, 2, 3]);
        let got: Vec<(Symbol, Vec<Pre>)> = t.groups().map(|(s, g)| (s, g.to_vec())).collect();
        assert_eq!(got, vec![(Symbol(2), vec![2]), (Symbol(5), vec![1, 3])]);
    }

    #[test]
    fn bitset_membership_matches_slice() {
        let nodes: Vec<Pre> = vec![0, 3, 63, 64, 65, 100];
        let set = PreSet::from_nodes(128, &nodes);
        for p in 0..130u32 {
            assert_eq!(set.contains(p), nodes.contains(&p), "node {p}");
        }
        assert_eq!(set.len(), nodes.len());
        assert!(!set.is_empty());
    }

    #[test]
    fn bitset_empty_universe_is_safe() {
        let set = PreSet::new(0);
        assert!(!set.contains(0));
        assert!(set.is_empty());
        let built = PreSet::from_nodes(0, &[]);
        assert_eq!(built.len(), 0);
    }

    #[test]
    fn bitset_duplicates_count_once() {
        let set = PreSet::from_nodes(10, &[4, 4, 4]);
        assert_eq!(set.len(), 1);
        assert!(set.contains(4));
    }
}
