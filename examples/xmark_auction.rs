//! The paper's §3.2 walkthrough: ROX on XMark-like auction data with a
//! price ↔ bidder-count correlation.
//!
//! Q1 selects cheap auctions (`current < 145`, few bidders each); Qm1
//! selects expensive ones (`current > 145`, many bidders each). A static
//! optimizer sees near-identical auction counts for both and would pick
//! the same plan; ROX re-samples after every execution and orders the
//! bidder-side and item-side path segments differently (Figs. 3.3 / 3.4).
//!
//! ```text
//! cargo run --release --example xmark_auction
//! ```

use rox_core::{run_rox, RoxOptions};
use rox_datagen::{generate_xmark, xmark_query, XmarkConfig};
use rox_xmldb::Catalog;
use std::sync::Arc;

fn main() {
    let catalog = Arc::new(Catalog::new());
    let cfg = XmarkConfig::default();
    generate_xmark(&catalog, "xmark.xml", &cfg);
    println!(
        "generated xmark.xml: {} auctions, {} persons, {} items (bidders ≈ 1 + price/{})\n",
        cfg.auctions, cfg.persons, cfg.items, cfg.price_per_bidder
    );

    for (name, op) in [("Q1  (current < 145)", "<"), ("Qm1 (current > 145)", ">")] {
        let graph = rox_joingraph::compile_query(&xmark_query(op, 145.0)).unwrap();
        let report = run_rox(
            Arc::clone(&catalog),
            &graph,
            RoxOptions {
                trace: true,
                ..Default::default()
            },
        )
        .unwrap();
        println!("==== {name} ====");
        println!("result rows: {}", report.output.len());
        println!("execution order:");
        for (i, &e) in report.executed_order.iter().enumerate() {
            let edge = graph.edge(e);
            let exec = report.edge_log.iter().find(|x| x.edge == e);
            println!(
                "  {:>2}. {} {} {} [{}]  -> {} rows",
                i + 1,
                graph.vertex(edge.v1).label,
                edge.kind.symbol(),
                graph.vertex(edge.v2).label,
                exec.map(|x| x.op.label()).unwrap_or("?"),
                exec.map(|x| x.result_rows).unwrap_or(0),
            );
        }
        println!(
            "work: {} exec + {} sampling; {} chain-sampling phases\n",
            report.exec_cost.total(),
            report.sample_cost.total(),
            report.traces.len()
        );
    }
    println!(
        "Compare the row counts on the bidder-side steps: expensive auctions (Qm1)\n\
         carry several times more bidders than cheap ones (Q1) although both\n\
         queries select a near-equal number of auctions — the correlation a\n\
         compile-time optimizer cannot know. ROX keeps the bidder branch last,\n\
         where its re-sampled weights say the explosion is."
    );
}
