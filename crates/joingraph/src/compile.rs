//! Join Graph isolation: compiling the FLWOR AST into a [`JoinGraph`].
//!
//! This is our stand-in for the Pathfinder rewrite pipeline of [17, 18]:
//! the paper's static compilation phase, which clusters all step/join/
//! selection operators into a Join Graph and pushes numbering, distinct and
//! sort operators into a tail. Our subset compiler produces the same graph
//! shape directly from the AST (see Figs. 1, 3 and 4 of the paper for the
//! target shapes, reproduced in the unit tests below).

use crate::ast::*;
use crate::graph::{EdgeKind, JoinGraph, VertexId, VertexLabel};
use rox_ops::Axis;
use rox_xmldb::{CmpOp, Constant, ValuePredicate};
use std::collections::HashMap;
use std::fmt;

/// A query → Join Graph compilation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "compile error: {}", self.message)
    }
}

impl std::error::Error for CompileError {}

fn err<T>(message: impl Into<String>) -> Result<T, CompileError> {
    Err(CompileError {
        message: message.into(),
    })
}

/// Compile a parsed query into its Join Graph (with equi-join closure
/// applied and the tail filled in).
pub fn compile(query: &Query) -> Result<JoinGraph, CompileError> {
    let mut c = Compiler {
        graph: JoinGraph::new(),
        roots: HashMap::new(),
        let_docs: HashMap::new(),
        var_doc: HashMap::new(),
    };
    c.run(query)?;
    Ok(c.graph)
}

struct Compiler {
    graph: JoinGraph,
    /// doc URI → root vertex.
    roots: HashMap<String, VertexId>,
    /// let var → doc URI.
    let_docs: HashMap<String, String>,
    /// for var → doc URI (for resolving where-clause paths).
    var_doc: HashMap<String, String>,
}

impl Compiler {
    fn run(&mut self, query: &Query) -> Result<(), CompileError> {
        for l in &query.lets {
            self.let_docs.insert(l.var.clone(), l.doc_uri.clone());
        }
        for f in &query.fors {
            let (start, uri) = match &f.source {
                Source::Doc(uri) => (self.root_vertex(uri), uri.clone()),
                Source::Var(v) => {
                    if let Some(uri) = self.let_docs.get(v).cloned() {
                        (self.root_vertex(&uri), uri)
                    } else if let Some(&vx) = self.graph.var_vertices.get(v) {
                        let uri = self.var_doc.get(v).cloned().ok_or(CompileError {
                            message: format!("variable ${v} has no document"),
                        })?;
                        (vx, uri)
                    } else {
                        return err(format!("unbound variable ${v}"));
                    }
                }
            };
            // Separate `for` bindings are distinct node sequences even over
            // identical paths; only where-clause path mentions share
            // vertices (Fig. 4).
            let end = self.compile_steps(start, &uri, &f.steps, false)?;
            self.graph.var_vertices.insert(f.var.clone(), end);
            self.var_doc.insert(f.var.clone(), uri);
        }
        for cond in &query.conditions {
            match cond {
                Condition::Join(a, op, b) => {
                    if *op != CmpOp::Eq {
                        return err("only equi-joins are supported between paths");
                    }
                    let va = self.resolve_var_path(a)?;
                    let vb = self.resolve_var_path(b)?;
                    self.check_value_vertex(va)?;
                    self.check_value_vertex(vb)?;
                    self.graph
                        .add_edge(va, vb, EdgeKind::EquiJoin { inferred: false });
                }
                Condition::Select(a, op, rhs) => {
                    let v = self.resolve_var_path(a)?;
                    self.attach_predicate(v, *op, rhs.clone())?;
                }
            }
        }
        // Join-equivalence closure (the dotted edges of Fig. 4).
        self.graph.close_equijoins();
        // Tail: distinct + document-order sort over the for variables, then
        // project the return variable (Fig. 1).
        let mut for_vertices = Vec::new();
        for f in &query.fors {
            for_vertices.push(self.graph.var_vertices[&f.var]);
        }
        self.graph.tail = crate::graph::TailSpec {
            dedup: for_vertices.clone(),
            sort: for_vertices,
            output: self.graph.var_vertices[&query.return_var],
        };
        Ok(())
    }

    fn root_vertex(&mut self, uri: &str) -> VertexId {
        if let Some(&v) = self.roots.get(uri) {
            return v;
        }
        let v = self.graph.add_vertex(uri, VertexLabel::Root);
        self.roots.insert(uri.to_string(), v);
        v
    }

    /// Compile a step chain from `from`, returning the final vertex.
    fn compile_steps(
        &mut self,
        from: VertexId,
        uri: &str,
        steps: &[Step],
        share: bool,
    ) -> Result<VertexId, CompileError> {
        let mut cur = from;
        for step in steps {
            cur = self.compile_step(cur, uri, step, share)?;
        }
        Ok(cur)
    }

    fn compile_step(
        &mut self,
        from: VertexId,
        uri: &str,
        step: &Step,
        share: bool,
    ) -> Result<VertexId, CompileError> {
        let (label, axis) = Self::step_label(step)?;
        // Pathfinder shares identical steps across *where-clause path
        // mentions*: a second `$a/text()` resolves to the vertex the first
        // mention created (Fig. 4 has one text() vertex per author). Only
        // predicate-free steps are shared.
        if share && step.predicates.is_empty() {
            for &eid in self.graph.edges_of(from) {
                let e = self.graph.edge(eid);
                if e.v1 == from && e.kind == EdgeKind::Step(axis) {
                    let target = self.graph.vertex(e.v2);
                    if target.label == label && target.doc_uri == uri {
                        return Ok(e.v2);
                    }
                }
            }
        }
        let v = self.graph.add_vertex(uri, label);
        self.graph.add_edge(from, v, EdgeKind::Step(axis));
        for pred in &step.predicates {
            match pred {
                Predicate::Exists(steps) => {
                    self.compile_steps(v, uri, steps, false)?;
                }
                Predicate::Compare(steps, op, rhs) => {
                    let end = self.compile_steps(v, uri, steps, false)?;
                    self.attach_predicate(end, *op, rhs.clone())?;
                }
            }
        }
        Ok(v)
    }

    fn step_label(step: &Step) -> Result<(VertexLabel, Axis), CompileError> {
        let pair = match (&step.test, step.axis) {
            (StepTest::Element(n), StepAxis::Child) => {
                (VertexLabel::Element(n.clone()), Axis::Child)
            }
            (StepTest::Element(n), StepAxis::Descendant) => {
                (VertexLabel::Element(n.clone()), Axis::Descendant)
            }
            (StepTest::Attribute(n), StepAxis::Child) => {
                (VertexLabel::Attribute(n.clone(), None), Axis::Attribute)
            }
            (StepTest::Attribute(_), StepAxis::Descendant) => {
                return err("descendant attribute steps (//@x) are not supported")
            }
            (StepTest::Text, StepAxis::Child) => (VertexLabel::Text(None), Axis::Child),
            (StepTest::Text, StepAxis::Descendant) => (VertexLabel::Text(None), Axis::Descendant),
        };
        Ok(pair)
    }

    /// Attach `<op> rhs` to vertex `v`. For element vertices an implicit
    /// `text()` child vertex carries the predicate (Fig. 3's
    /// `quantity —/— text() = 1` pattern).
    fn attach_predicate(
        &mut self,
        v: VertexId,
        op: CmpOp,
        rhs: Constant,
    ) -> Result<(), CompileError> {
        let pred = ValuePredicate { op, rhs };
        let uri = self.graph.vertex(v).doc_uri.clone();
        match self.graph.vertex(v).label.clone() {
            VertexLabel::Text(existing) => {
                if existing.is_some() {
                    // Two predicates on one path: hang a sibling text vertex
                    // off the same parent — both must hold.
                    return err("multiple predicates on one text vertex are not supported");
                }
                self.set_label(v, VertexLabel::Text(Some(pred)));
            }
            VertexLabel::Attribute(name, existing) => {
                if existing.is_some() {
                    return err("multiple predicates on one attribute vertex are not supported");
                }
                self.set_label(v, VertexLabel::Attribute(name, Some(pred)));
            }
            VertexLabel::Element(_) => {
                let t = self.graph.add_vertex(uri, VertexLabel::Text(Some(pred)));
                self.graph.add_edge(v, t, EdgeKind::Step(Axis::Child));
            }
            VertexLabel::Root => return err("cannot apply a value predicate to a document root"),
        }
        Ok(())
    }

    fn set_label(&mut self, v: VertexId, label: VertexLabel) {
        // JoinGraph exposes vertices immutably; rebuild through a small
        // internal helper instead of exposing mutation broadly.
        self.graph.set_vertex_label(v, label);
    }

    /// Resolve `$var/steps` to the vertex the path ends at, creating
    /// vertices/edges for the relative steps.
    fn resolve_var_path(&mut self, path: &VarPath) -> Result<VertexId, CompileError> {
        let &start = self.graph.var_vertices.get(&path.var).ok_or(CompileError {
            message: format!("unbound variable ${}", path.var),
        })?;
        let uri = self.var_doc.get(&path.var).cloned().ok_or(CompileError {
            message: format!("variable ${} has no document", path.var),
        })?;
        self.compile_steps(start, &uri, &path.steps, true)
    }

    /// Equi-join endpoints must carry values: text or attribute vertices.
    fn check_value_vertex(&self, v: VertexId) -> Result<(), CompileError> {
        match self.graph.vertex(v).label {
            VertexLabel::Text(_) | VertexLabel::Attribute(..) => Ok(()),
            _ => err("equi-join endpoints must be text() or attribute paths"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;

    fn graph_of(src: &str) -> JoinGraph {
        compile(&parse_query(src).unwrap()).unwrap()
    }

    const Q_FIG1: &str = r#"
        let $r := doc("auction.xml")
        for $a in $r//open_auction[./reserve]/bidder//personref,
            $b in $r//person[.//education]
        where $a/@person = $b/@id
        return $a
    "#;

    #[test]
    fn fig1_graph_shape() {
        let g = graph_of(Q_FIG1);
        // Vertices: root, open_auction, reserve, bidder, personref,
        // @person, person, education, @id = 9 (Fig. 1).
        assert_eq!(g.vertex_count(), 9);
        // Edges: root//open_auction, open_auction/reserve,
        // open_auction/bidder, bidder//personref, personref/@person,
        // root//person, person//education, person/@id, @person=@id = 9.
        assert_eq!(g.edge_count(), 9);
        // One shared root vertex for the single document.
        let roots: Vec<_> = g
            .vertices()
            .iter()
            .filter(|v| matches!(v.label, VertexLabel::Root))
            .collect();
        assert_eq!(roots.len(), 1);
        // Exactly the two descendant-from-root edges are redundant.
        assert_eq!(g.edges().iter().filter(|e| e.redundant).count(), 2);
        // Tail: dedup/sort on (personref, person), output personref.
        let a = g.var_vertices["a"];
        let b = g.var_vertices["b"];
        assert_eq!(g.tail.dedup, vec![a, b]);
        assert_eq!(g.tail.output, a);
        assert!(matches!(g.vertex(a).label, VertexLabel::Element(ref n) if n == "personref"));
    }

    #[test]
    fn xmark_q1_graph_matches_fig3() {
        let g = graph_of(
            r#"
            let $d := doc("xmark.xml")
            for $o in $d//open_auction[.//current/text() < 145],
                $p in $d//person[.//province],
                $i in $d//item[./quantity = 1]
            where $o//bidder//personref/@person = $p/@id and
                  $o//itemref/@item = $i/@id
            return $o
        "#,
        );
        // Fig. 3.1: root, open_auction, current, text()<145, person,
        // province, @id(person), item, quantity, text()=1, @id(item),
        // bidder, personref, @person, itemref, @item = 16 vertices.
        assert_eq!(g.vertex_count(), 16);
        // The quantity = 1 predicate became a text() = 1 child vertex.
        assert!(g.vertices().iter().any(|v| matches!(
            &v.label,
            VertexLabel::Text(Some(p)) if p.to_string() == "= 1"
        )));
        // The current < 145 predicate sits on a text vertex.
        assert!(g.vertices().iter().any(|v| matches!(
            &v.label,
            VertexLabel::Text(Some(p)) if p.to_string() == "< 145"
        )));
        // Two explicit equi-joins, no closure possible (disjoint pairs).
        let equis = g
            .edges()
            .iter()
            .filter(|e| matches!(e.kind, EdgeKind::EquiJoin { .. }))
            .count();
        assert_eq!(equis, 2);
    }

    #[test]
    fn dblp_template_gets_closure_edges() {
        let g = graph_of(
            r#"
            for $a1 in doc("DOC1.xml")//author,
                $a2 in doc("DOC2.xml")//author,
                $a3 in doc("DOC3.xml")//author,
                $a4 in doc("DOC4.xml")//author
            where $a1/text() = $a2/text() and
                  $a1/text() = $a3/text() and
                  $a1/text() = $a4/text()
            return $a1
        "#,
        );
        // Fig. 4: 4 roots + 4 author + 4 text = 12 vertices; edges: 4
        // root//author + 4 author/text + 3 explicit = + 3 inferred = 14.
        assert_eq!(g.vertex_count(), 12);
        assert_eq!(g.edge_count(), 14);
        let inferred = g
            .edges()
            .iter()
            .filter(|e| matches!(e.kind, EdgeKind::EquiJoin { inferred: true }))
            .count();
        assert_eq!(inferred, 3);
    }

    #[test]
    fn repeated_var_paths_share_vertices() {
        // `$a1/text()` mentioned twice resolves to one shared text vertex
        // (Fig. 4 has exactly one text() vertex per author).
        let g = graph_of(
            r#"
            for $a1 in doc("A.xml")//author,
                $a2 in doc("B.xml")//author
            where $a1/text() = $a2/text() and $a2/text() = $a1/text()
            return $a1
        "#,
        );
        let texts = g
            .vertices()
            .iter()
            .filter(|v| matches!(v.label, VertexLabel::Text(_)))
            .count();
        assert_eq!(texts, 2);
    }

    #[test]
    fn select_condition_attaches_predicate() {
        let g = graph_of(r#"for $a in doc("d.xml")//item where $a/price/text() < 10 return $a"#);
        assert!(g.vertices().iter().any(|v| matches!(
            &v.label,
            VertexLabel::Text(Some(p)) if p.to_string() == "< 10"
        )));
    }

    #[test]
    fn equijoin_on_elements_rejected() {
        let q = parse_query(
            r#"for $a in doc("d.xml")//x, $b in doc("d.xml")//y
               where $a/child = $b/child return $a"#,
        )
        .unwrap();
        let e = compile(&q).unwrap_err();
        assert!(e.message.contains("text() or attribute"), "{e}");
    }

    #[test]
    fn non_eq_join_rejected() {
        let q = parse_query(
            r#"for $a in doc("d.xml")//x, $b in doc("d.xml")//y
               where $a/text() < $b/text() return $a"#,
        )
        .unwrap();
        let e = compile(&q).unwrap_err();
        assert!(e.message.contains("equi-join"), "{e}");
    }

    #[test]
    fn chained_for_variables_share_vertices() {
        let g = graph_of(
            r#"
            for $a in doc("d.xml")//auction,
                $b in $a/bidder
            return $b
        "#,
        );
        // root, auction, bidder.
        assert_eq!(g.vertex_count(), 3);
        let a = g.var_vertices["a"];
        let b = g.var_vertices["b"];
        assert!(g.has_edge_between(a, b));
    }

    #[test]
    fn attribute_with_value_predicate() {
        let g = graph_of(r#"for $p in doc("d.xml")//person where $p/@id = "p7" return $p"#);
        assert!(g.vertices().iter().any(|v| matches!(
            &v.label,
            VertexLabel::Attribute(n, Some(p)) if n == "id" && p.to_string() == "= \"p7\""
        )));
    }
}
