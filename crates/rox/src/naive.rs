//! A deliberately naive reference evaluator used as a differential-testing
//! oracle: it evaluates the Join Graph with nested-loop node joins and
//! per-row predicate checks, sharing no staircase/index/hash code with the
//! engine under test (only base lists, the columnar relation type, and the
//! kernel's row-at-a-time [`edge_predicate`] face — which is itself
//! index-free by construction).

use crate::env::RoxEnv;
use rox_joingraph::{JoinGraph, VertexLabel};
use rox_ops::{edge_predicate, Cost, Relation, Tail};
use rox_xmldb::Pre;
use std::collections::HashMap;

/// Evaluate the whole graph naively; returns (joined, output-after-tail).
pub fn naive_evaluate(env: &RoxEnv, graph: &JoinGraph) -> (Relation, Relation) {
    // Component maintenance mirroring the real evaluator, but with O(n·m)
    // joins and no operator reuse.
    let mut comp_of: Vec<Option<usize>> = vec![None; graph.vertex_count()];
    let mut comps: Vec<Option<Relation>> = Vec::new();

    let ensure = |v: u32, comp_of: &mut Vec<Option<usize>>, comps: &mut Vec<Option<Relation>>| {
        if comp_of[v as usize].is_none() {
            let base = env.base_list(graph, v);
            let rel = Relation::single(v, env.doc_id(v), base.to_vec());
            comp_of[v as usize] = Some(comps.len());
            comps.push(Some(rel));
        }
    };

    for edge in graph.edges() {
        if edge.redundant {
            continue;
        }
        let (v1, v2) = (edge.v1, edge.v2);
        ensure(v1, &mut comp_of, &mut comps);
        ensure(v2, &mut comp_of, &mut comps);
        let c1 = comp_of[v1 as usize].unwrap();
        let c2 = comp_of[v2 as usize].unwrap();
        let class = edge.kind.class();
        let cross_doc = env.doc_id(v1) != env.doc_id(v2);
        let holds = |a: Pre, b: Pre| -> bool {
            if edge.is_step() && cross_doc {
                return false;
            }
            edge_predicate(class, &env.doc(v1), &env.doc(v2), a, b)
        };
        if c1 == c2 {
            let rel = comps[c1].take().unwrap();
            let keep: Vec<bool> = (0..rel.len())
                .map(|i| holds(rel.col(v1)[i], rel.col(v2)[i]))
                .collect();
            let mut rel = rel;
            rel.retain_rows(&keep);
            comps[c1] = Some(rel);
        } else {
            let left = comps[c1].take().unwrap();
            let right = comps[c2].take().unwrap();
            // All node pairs by nested loops over the distinct columns.
            let ln = left.distinct_nodes(v1);
            let rn = right.distinct_nodes(v2);
            let mut pairs = Vec::new();
            for &a in &ln {
                for &b in &rn {
                    if holds(a, b) {
                        pairs.push((a, b));
                    }
                }
            }
            let joined = Relation::compose(&left, v1, &right, v2, &pairs);
            for slot in comp_of.iter_mut() {
                if *slot == Some(c2) {
                    *slot = Some(c1);
                }
            }
            comps[c1] = Some(joined);
        }
    }

    // Materialize untouched non-root vertices and combine components.
    for v in graph.vertices() {
        if matches!(v.label, VertexLabel::Root) {
            continue;
        }
        ensure(v.id, &mut comp_of, &mut comps);
    }
    let mut parts: HashMap<usize, Relation> = HashMap::new();
    for v in graph.vertices() {
        if matches!(v.label, VertexLabel::Root) {
            continue;
        }
        let cid = comp_of[v.id as usize].unwrap();
        parts
            .entry(cid)
            .or_insert_with(|| comps[cid].clone().unwrap());
    }
    let mut ids: Vec<usize> = parts.keys().copied().collect();
    ids.sort_unstable();
    let mut joined: Option<Relation> = None;
    for cid in ids {
        let part = parts.remove(&cid).unwrap();
        joined = Some(match joined {
            None => part,
            Some(acc) => Relation::cartesian(&acc, &part),
        });
    }
    let joined = joined.unwrap_or_else(|| Relation::empty(vec![], vec![]));
    let tail = Tail {
        dedup_vars: graph.tail.dedup.clone(),
        sort_vars: graph.tail.sort.clone(),
        output_vars: vec![graph.tail.output],
    };
    let output = tail.apply(&joined, &mut Cost::new());
    (joined, output)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::{run_rox, RoxOptions};
    use rox_joingraph::compile_query;
    use rox_xmldb::Catalog;
    use std::sync::Arc;

    #[test]
    fn naive_matches_rox_on_step_query() {
        let cat = Arc::new(Catalog::new());
        cat.load_str(
            "d.xml",
            "<site><auction><bidder><ref/></bidder><bidder/></auction><auction><bidder><ref/><ref/></bidder></auction></site>",
        )
        .unwrap();
        let g = compile_query(
            r#"for $a in doc("d.xml")//auction, $b in $a/bidder, $r in $b/ref return $r"#,
        )
        .unwrap();
        let env = RoxEnv::new(Arc::clone(&cat), &g).unwrap();
        let (_, naive_out) = naive_evaluate(&env, &g);
        let rox = run_rox(cat, &g, RoxOptions::default()).unwrap();
        assert_eq!(naive_out, rox.output);
    }

    #[test]
    fn naive_matches_rox_on_join_query() {
        let cat = Arc::new(Catalog::new());
        cat.load_str("x.xml", "<r><a>k1</a><a>k2</a><a>k2</a><a>zz</a></r>")
            .unwrap();
        cat.load_str("y.xml", "<r><b>k2</b><b>k1</b><b>k1</b></r>")
            .unwrap();
        let g = compile_query(
            r#"for $x in doc("x.xml")//a, $y in doc("y.xml")//b
               where $x/text() = $y/text() return $x"#,
        )
        .unwrap();
        let env = RoxEnv::new(Arc::clone(&cat), &g).unwrap();
        let (naive_joined, naive_out) = naive_evaluate(&env, &g);
        let rox = run_rox(cat, &g, RoxOptions::default()).unwrap();
        assert_eq!(naive_joined.len(), rox.joined.len());
        assert_eq!(naive_out, rox.output);
    }
}
