//! Table 2 benchmark: full ROX runs (chain sampling included) of Q1 and
//! Qm1 on the correlated XMark-like document.

use criterion::{criterion_group, criterion_main, Criterion};
use rox_bench::table2::{run, Table2Config};
use rox_bench::xmark_catalog;
use rox_core::{run_rox, RoxOptions};
use rox_datagen::{xmark_query, XmarkConfig};
use std::hint::black_box;
use std::sync::Arc;

fn bench_table2(c: &mut Criterion) {
    let cfg = Table2Config {
        xmark: XmarkConfig {
            persons: 300,
            items: 250,
            auctions: 250,
            ..XmarkConfig::default()
        },
        ..Table2Config::default()
    };
    c.bench_function("table2/q1_and_qm1", |b| b.iter(|| black_box(run(&cfg))));
}

fn bench_rox_variants(c: &mut Criterion) {
    let catalog = xmark_catalog(&XmarkConfig {
        persons: 300,
        items: 250,
        auctions: 250,
        ..XmarkConfig::default()
    });
    let mut group = c.benchmark_group("chain_sampling");
    for (name, op) in [("q1_lt", "<"), ("qm1_gt", ">")] {
        let graph = rox_joingraph::compile_query(&xmark_query(op, 145.0)).unwrap();
        group.bench_function(name, |b| {
            b.iter(|| {
                black_box(run_rox(Arc::clone(&catalog), &graph, RoxOptions::default()).unwrap())
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_table2, bench_rox_variants
}
criterion_main!(benches);
