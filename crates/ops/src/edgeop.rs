//! The physical edge-operator kernel: **one** dispatch layer for every
//! edge execution in the system.
//!
//! ROX's central claim is that run-time estimates are trustworthy because
//! the *same* sampled operator run used for weighting is (an instance of)
//! the operator that will later execute the edge (§6). That only holds if
//! there is exactly one place that maps an edge to a physical operator.
//! This module is that place: candidate weighting, chain-sampling
//! extensions, full edge execution, plan replay, the enumeration baseline,
//! and the naive oracle all call [`execute_edge_op`] (or, for
//! intra-component selections, [`edge_predicate`]) instead of dispatching
//! on the edge kind themselves.
//!
//! The operator *choice* is the explicit cost function
//! [`choose_op`](crate::cost::choose_op()) in [`crate::cost`]; this module
//! owns the operator *execution*:
//!
//! | edge kind  | mode    | operator                                         |
//! |------------|---------|--------------------------------------------------|
//! | step       | sampled | [`step_join`] with cut-off, caller-fixed outer   |
//! | step       | full    | [`step_join_partitioned_scratch`], smaller side outer, kernel by [`choose_step_kernel`](crate::cost::choose_step_kernel()) |
//! | value join | sampled | [`index_value_join_set_pooled`] with cut-off (0-invest) |
//! | value join | full, skewed | [`index_value_join_set_pooled`], smaller side outer |
//! | value join | full, balanced | [`hash_value_join_partitioned_with`](crate::partition::hash_value_join_partitioned_with()) (pooled) |
//!
//! New operators (staircase variants, semijoin reducers, new axes) plug in
//! here once and every phase — sampling included — picks them up.

use crate::axis::Axis;
use crate::cost::{choose_op, Cost};
use crate::cutoff::JoinOut;
use crate::partition::{hash_value_join_partitioned_pooled, step_join_partitioned_scratch};
use crate::pool::ScratchPool;
use crate::staircase::{naive_axis, step_join, StepScratch};
use crate::valjoin::{filter_set, index_value_join_set_pooled};
use rox_index::{PreSet, SymbolTable, ValueIndex};
use rox_par::{Parallelism, WorkerPool};
use rox_xmldb::{Document, NodeKind, Pre};

/// Logical classification of a Join Graph edge, decoupled from the graph
/// representation (the front-end crate maps its `EdgeKind` onto this).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeClass {
    /// A path step along `axis`, written `v1 ◦axis→ v2` (the direction is
    /// representational; the kernel may execute the inverse axis).
    Step(Axis),
    /// A relational value equi-join between two node sets.
    ValueJoin,
}

/// The physical operator the kernel chose for one edge execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeOpKind {
    /// Structural staircase join ([`step_join`] / its partitioned variant).
    StepJoin,
    /// Index nested-loop value join probing the inner value index
    /// (zero-investment; the only value join sampling may use).
    IndexNLValueJoin,
    /// Hash value join over both materialized inputs (full mode only).
    HashValueJoin,
    /// Per-row predicate selection for an edge whose endpoints already
    /// live in one component (never produced by
    /// [`choose_op`](crate::cost::choose_op()); the evaluation state maps
    /// intra-component edges here and filters via [`edge_predicate`]).
    Select,
}

impl EdgeOpKind {
    /// Short label for explain/trace rendering.
    pub fn label(self) -> &'static str {
        match self {
            EdgeOpKind::StepJoin => "step",
            EdgeOpKind::IndexNLValueJoin => "idx-nl",
            EdgeOpKind::HashValueJoin => "hash",
            EdgeOpKind::Select => "select",
        }
    }
}

impl std::fmt::Display for EdgeOpKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// How an edge is executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Cut-off sampled execution (§2.3): the outer side is fixed by the
    /// caller (the sampled endpoint) and result generation stops after
    /// `limit` pairs. Restricted to zero-investment operators.
    Sampled {
        /// The cut-off `l` on produced pairs.
        limit: usize,
        /// Whether the outer (context) side is the edge's `v1` endpoint.
        outer_is_v1: bool,
    },
    /// Full materialized execution; direction and operator are chosen by
    /// cost, and the partitioned operator variants engage under the
    /// kernel's [`Parallelism`] budget.
    Full,
}

/// The resolved `(operator, direction)` decision for one edge execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeOpChoice {
    /// Which physical operator runs.
    pub kind: EdgeOpKind,
    /// Whether the outer (context / probe-from) side is `v1`.
    pub outer_is_v1: bool,
}

/// Everything [`execute_edge_op`] needs to run one edge: the edge's
/// classification and mode plus, for each endpoint, its document, current
/// input, value index, and node kind. "Current input" means the
/// materialized distinct table `T(v)` in full mode; in sampled mode the
/// outer side carries the sample (duplicates allowed) and the inner side
/// `T(v′)` or the vertex base list.
pub struct EdgeOpCtx<'a> {
    /// Logical edge classification.
    pub class: EdgeClass,
    /// Sampled cut-off or full execution.
    pub mode: ExecMode,
    /// Document of `v1` (equals `doc2` for step edges).
    pub doc1: &'a Document,
    /// Document of `v2`.
    pub doc2: &'a Document,
    /// Current input on the `v1` side, sorted on pre.
    pub input1: &'a [Pre],
    /// Current input on the `v2` side, sorted on pre (distinct — it doubles
    /// as the binary-searched candidate/filter list when `v2` is inner).
    pub input2: &'a [Pre],
    /// Value index over `doc1` (value joins only; `None` for steps).
    pub index1: Option<&'a ValueIndex>,
    /// Value index over `doc2` (value joins only; `None` for steps).
    pub index2: Option<&'a ValueIndex>,
    /// Node kind of `v1`'s nodes (text/attribute routing of index probes).
    pub kind1: NodeKind,
    /// Node kind of `v2`'s nodes.
    pub kind2: NodeKind,
    /// Worker-thread budget for full-mode partitioned execution (ignored in
    /// sampled mode — cut-off execution is inherently sequential).
    pub par: Parallelism,
    /// The worker pool the partitioned operators fan out on; `None` uses
    /// the process-shared pool. The engine passes its own pool here so
    /// intra-query fan-out and inter-query serving share one set of
    /// always-on threads.
    pub workers: Option<&'a WorkerPool>,
}

/// What one kernel invocation produced, in the shape its mode calls for.
#[derive(Debug, Clone)]
pub enum EdgeOpResult {
    /// Sampled mode: the cut-off pair output, rows indexing the outer
    /// input, with reduction-factor bookkeeping for extrapolation.
    Sampled(JoinOut<Pre>),
    /// Full mode: node-level pre pairs oriented `(v1 node, v2 node)`.
    Full(Vec<(Pre, Pre)>),
}

impl EdgeOpResult {
    /// The sampled-mode output; panics if the kernel ran in full mode.
    pub fn into_sampled(self) -> JoinOut<Pre> {
        match self {
            EdgeOpResult::Sampled(out) => out,
            EdgeOpResult::Full(_) => panic!("edge op ran in full mode, not sampled"),
        }
    }

    /// The full-mode `(v1, v2)` pairs; panics if the kernel ran sampled.
    pub fn into_full(self) -> Vec<(Pre, Pre)> {
        match self {
            EdgeOpResult::Full(pairs) => pairs,
            EdgeOpResult::Sampled(_) => panic!("edge op ran in sampled mode, not full"),
        }
    }
}

/// Output of [`execute_edge_op`]: the operator decision (for edge logs,
/// chain traces, and explain output) plus the mode-shaped result.
#[derive(Debug, Clone)]
pub struct EdgeOpOut {
    /// Which operator ran, in which direction.
    pub choice: EdgeOpChoice,
    /// The produced pairs.
    pub result: EdgeOpResult,
}

/// Prebuilt dense join state for one kernel invocation, mirroring the two
/// inputs of [`EdgeOpCtx`]: membership bitsets over each input and CSR
/// join tables built over each input's value symbols. All fields are
/// optional — the kernel builds whatever it needs on the fly when a field
/// is `None` — and results and cost charges are identical either way; a
/// caller with a scratch arena (the evaluation state) passes cached
/// structures here purely to skip the rebuild.
#[derive(Default, Clone, Copy)]
pub struct DenseState<'a> {
    /// Membership bitset over `input1` (the inner filter of a value join,
    /// or the candidate set of a bitset-kernel step, when `v1` is the
    /// inner side).
    pub set1: Option<&'a PreSet>,
    /// Membership bitset over `input2`.
    pub set2: Option<&'a PreSet>,
    /// CSR join table over `input1`'s value symbols (hash value joins).
    pub table1: Option<&'a SymbolTable>,
    /// CSR join table over `input2`'s value symbols.
    pub table2: Option<&'a SymbolTable>,
    /// Scratch pool for pair buffers, bitset universes, and full-mode
    /// output orientation (see [`crate::pool`]).
    pub pool: Option<&'a ScratchPool>,
}

/// Execute one edge through the kernel: consult
/// [`choose_op`](crate::cost::choose_op()) for the `(operator, direction)`
/// decision, run the operator, and — in full mode — orient the produced
/// pairs back into `(v1, v2)` order. All operator work is charged to
/// `cost`, exactly as the underlying operator charges it.
pub fn execute_edge_op(ctx: EdgeOpCtx<'_>, cost: &mut Cost) -> EdgeOpOut {
    execute_edge_op_with(ctx, DenseState::default(), cost)
}

/// As [`execute_edge_op`] with prebuilt [`DenseState`] (cached bitsets /
/// CSR tables from the caller's scratch arena). Bit-identical to the plain
/// entry point in output, operator choice, and cost charges.
pub fn execute_edge_op_with(
    ctx: EdgeOpCtx<'_>,
    dense: DenseState<'_>,
    cost: &mut Cost,
) -> EdgeOpOut {
    let choice = choose_op(ctx.class, ctx.input1.len(), ctx.input2.len(), ctx.mode);
    let (outer_doc, outer, inner, inner_index, inner_kind) = if choice.outer_is_v1 {
        (ctx.doc1, ctx.input1, ctx.input2, ctx.index2, ctx.kind2)
    } else {
        (ctx.doc2, ctx.input2, ctx.input1, ctx.index1, ctx.kind1)
    };
    let rows = match choice.kind {
        EdgeOpKind::StepJoin => {
            let axis = match ctx.class {
                EdgeClass::Step(ax) => ax,
                EdgeClass::ValueJoin => unreachable!("step op on a value-join edge"),
            };
            let ax = if choice.outer_is_v1 {
                axis
            } else {
                axis.inverse()
            };
            match ctx.mode {
                ExecMode::Sampled { limit, .. } => {
                    step_join(outer_doc, ax, outer, inner, Some(limit), cost)
                }
                ExecMode::Full => {
                    // The bitset kernel's candidate set is the *inner*
                    // endpoint's membership set — the caller's cached one
                    // when provided (the evaluation state's scratch
                    // arena), else the kernel builds/pools its own.
                    let inner_set = if choice.outer_is_v1 {
                        dense.set2
                    } else {
                        dense.set1
                    };
                    let scratch = StepScratch {
                        cands_set: inner_set,
                        pool: dense.pool,
                    };
                    step_join_partitioned_scratch(
                        outer_doc,
                        ax,
                        outer,
                        inner,
                        ctx.workers,
                        ctx.par,
                        scratch,
                        cost,
                    )
                }
            }
        }
        EdgeOpKind::IndexNLValueJoin => {
            let index = inner_index.expect("value join requires the inner value index");
            let limit = match ctx.mode {
                ExecMode::Sampled { limit, .. } => Some(limit),
                ExecMode::Full => None,
            };
            // The inner filter as a bitset: the caller's cached set when
            // provided, else built here from the (sorted) inner input.
            let inner_set = if choice.outer_is_v1 {
                dense.set2
            } else {
                dense.set1
            };
            let built_set;
            let inner_set = match inner_set {
                Some(s) => s,
                None => {
                    built_set = filter_set(inner);
                    &built_set
                }
            };
            index_value_join_set_pooled(
                outer_doc,
                outer,
                index,
                inner_kind,
                Some(inner_set),
                limit,
                // Sampled outputs travel up to the estimator whole; only
                // full-mode pair buffers return to the pool (right below,
                // after orientation).
                match ctx.mode {
                    ExecMode::Full => dense.pool,
                    ExecMode::Sampled { .. } => None,
                },
                cost,
            )
        }
        EdgeOpKind::HashValueJoin => {
            // Emits (v1, v2)-oriented node pairs directly; the internal
            // build-side choice is independent of the outer/inner framing.
            let pairs = hash_value_join_partitioned_pooled(
                ctx.doc1,
                ctx.input1,
                ctx.doc2,
                ctx.input2,
                dense.table1,
                dense.table2,
                dense.pool,
                ctx.workers,
                ctx.par,
                cost,
            );
            return EdgeOpOut {
                choice,
                result: EdgeOpResult::Full(pairs),
            };
        }
        EdgeOpKind::Select => unreachable!("choose_op never selects the predicate path"),
    };
    let result = match ctx.mode {
        ExecMode::Sampled { .. } => EdgeOpResult::Sampled(rows),
        ExecMode::Full => {
            // Resolve outer rows to nodes and orient pairs as (v1, v2);
            // the orientation buffer is pool-leased (the caller returns
            // it once the pairs are composed into the component
            // relation), and the kernel's pair buffer flows straight
            // back.
            let mut pairs = match dense.pool {
                Some(pool) => pool.lease_node_pairs(),
                None => Vec::new(),
            };
            pairs.reserve(rows.pairs.len());
            pairs.extend(rows.pairs.iter().map(|&(row, s)| {
                let c = outer[row as usize];
                if choice.outer_is_v1 {
                    (c, s)
                } else {
                    (s, c)
                }
            }));
            if let Some(pool) = dense.pool {
                pool.give_pairs(rows.pairs);
            }
            EdgeOpResult::Full(pairs)
        }
    };
    EdgeOpOut { choice, result }
}

/// Per-pair edge predicate: does the edge's operator relate `p1` (a node
/// of `v1`, in `doc1`) to `p2` (a node of `v2`, in `doc2`)? This is the
/// kernel's row-at-a-time face, used for intra-component selections
/// ([`EdgeOpKind::Select`]) and by the naive differential-testing oracle —
/// deliberately index-free so the oracle shares no staircase/hash code
/// with the set-at-a-time operators above.
pub fn edge_predicate(
    class: EdgeClass,
    doc1: &Document,
    doc2: &Document,
    p1: Pre,
    p2: Pre,
) -> bool {
    match class {
        EdgeClass::Step(ax) => naive_axis(doc1, ax, p1, p2),
        EdgeClass::ValueJoin => doc1.value(p1) == doc2.value(p2),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rox_xmldb::Catalog;
    use std::sync::Arc;

    fn text_nodes(doc: &Document) -> Vec<Pre> {
        (0..doc.node_count() as Pre)
            .filter(|&p| doc.kind(p) == NodeKind::Text)
            .collect()
    }

    fn value_join_ctx<'a>(
        mode: ExecMode,
        da: &'a Document,
        ta: &'a [Pre],
        ia: &'a ValueIndex,
        db: &'a Document,
        tb: &'a [Pre],
        ib: &'a ValueIndex,
    ) -> EdgeOpCtx<'a> {
        EdgeOpCtx {
            class: EdgeClass::ValueJoin,
            mode,
            doc1: da,
            doc2: db,
            input1: ta,
            input2: tb,
            index1: Some(ia),
            index2: Some(ib),
            kind1: NodeKind::Text,
            kind2: NodeKind::Text,
            par: Parallelism::Sequential,
            workers: None,
        }
    }

    #[test]
    fn full_value_join_picks_hash_on_balanced_inputs() {
        let cat = Arc::new(Catalog::new());
        let a = cat
            .load_str("a.xml", "<r><x>k1</x><x>k2</x><x>k2</x></r>")
            .unwrap();
        let b = cat
            .load_str("b.xml", "<r><y>k2</y><y>k3</y><y>k1</y></r>")
            .unwrap();
        let (da, db) = (cat.doc(a), cat.doc(b));
        let (ia, ib) = (ValueIndex::build(&da), ValueIndex::build(&db));
        let (ta, tb) = (text_nodes(&da), text_nodes(&db));
        let mut cost = Cost::new();
        let out = execute_edge_op(
            value_join_ctx(ExecMode::Full, &da, &ta, &ia, &db, &tb, &ib),
            &mut cost,
        );
        assert_eq!(out.choice.kind, EdgeOpKind::HashValueJoin);
        let mut pairs = out.result.into_full();
        pairs.sort_unstable();
        // k1 matches 1, k2 (x2) matches 1 each => 3 pairs.
        assert_eq!(pairs.len(), 3);
        for &(l, r) in &pairs {
            assert_eq!(da.value(l), db.value(r));
        }
    }

    #[test]
    fn full_value_join_picks_index_nl_on_skew_and_matches_hash() {
        let cat = Arc::new(Catalog::new());
        let mut big = String::from("<r>");
        for i in 0..200 {
            big.push_str(&format!("<y>v{}</y>", i % 20));
        }
        big.push_str("</r>");
        let a = cat.load_str("a.xml", "<r><x>v7</x></r>").unwrap();
        let b = cat.load_str("b.xml", &big).unwrap();
        let (da, db) = (cat.doc(a), cat.doc(b));
        let (ia, ib) = (ValueIndex::build(&da), ValueIndex::build(&db));
        let (ta, tb) = (text_nodes(&da), text_nodes(&db));
        let mut cost = Cost::new();
        let out = execute_edge_op(
            value_join_ctx(ExecMode::Full, &da, &ta, &ia, &db, &tb, &ib),
            &mut cost,
        );
        assert_eq!(out.choice.kind, EdgeOpKind::IndexNLValueJoin);
        assert!(out.choice.outer_is_v1);
        let pairs = out.result.into_full();
        assert_eq!(pairs.len(), 10); // v7 appears 10 times on the big side
                                     // Flip the sides: the kernel must flip direction and re-orient the
                                     // pairs so the (v1, v2) framing is preserved.
        let mut cost2 = Cost::new();
        let flipped = execute_edge_op(
            value_join_ctx(ExecMode::Full, &db, &tb, &ib, &da, &ta, &ia),
            &mut cost2,
        );
        assert_eq!(flipped.choice.kind, EdgeOpKind::IndexNLValueJoin);
        assert!(!flipped.choice.outer_is_v1);
        let swapped: Vec<(Pre, Pre)> = flipped
            .result
            .into_full()
            .into_iter()
            .map(|(l, r)| (r, l))
            .collect();
        assert_eq!(swapped, pairs);
    }

    #[test]
    fn sampled_step_honors_direction_and_cutoff() {
        let cat = Arc::new(Catalog::new());
        let id = cat
            .load_str(
                "d.xml",
                "<site><a><b/><b/></a><a><b/></a><a><b/><b/><b/></a></site>",
            )
            .unwrap();
        let doc = cat.doc(id);
        let sym_a = doc.interner().get("a").unwrap();
        let sym_b = doc.interner().get("b").unwrap();
        let all: Vec<Pre> = (0..doc.node_count() as Pre)
            .filter(|&p| doc.kind(p) == NodeKind::Element)
            .collect();
        let a_nodes: Vec<Pre> = all
            .iter()
            .copied()
            .filter(|&p| doc.name(p) == sym_a)
            .collect();
        let b_nodes: Vec<Pre> = all
            .iter()
            .copied()
            .filter(|&p| doc.name(p) == sym_b)
            .collect();
        let ctx = |mode| EdgeOpCtx {
            class: EdgeClass::Step(Axis::Child),
            mode,
            doc1: &doc,
            doc2: &doc,
            input1: &a_nodes,
            input2: &b_nodes,
            index1: None,
            index2: None,
            kind1: NodeKind::Element,
            kind2: NodeKind::Element,
            par: Parallelism::Sequential,
            workers: None,
        };
        // Forward: children of each a.
        let mut cost = Cost::new();
        let fwd = execute_edge_op(
            ctx(ExecMode::Sampled {
                limit: 100,
                outer_is_v1: true,
            }),
            &mut cost,
        );
        assert_eq!(fwd.choice.kind, EdgeOpKind::StepJoin);
        assert_eq!(fwd.result.into_sampled().pairs.len(), 6);
        // Reverse: parent of each b (inverse axis).
        let rev = execute_edge_op(
            ctx(ExecMode::Sampled {
                limit: 100,
                outer_is_v1: false,
            }),
            &mut cost,
        );
        assert_eq!(rev.result.into_sampled().pairs.len(), 6);
        // Cut-off truncates and extrapolates.
        let cut = execute_edge_op(
            ctx(ExecMode::Sampled {
                limit: 2,
                outer_is_v1: true,
            }),
            &mut cost,
        );
        let out = cut.result.into_sampled();
        assert!(out.truncated);
        assert_eq!(out.pairs.len(), 2);
        assert!(out.estimate() >= 2.0);
    }

    #[test]
    fn full_step_runs_from_smaller_side_with_v1_v2_pairs() {
        let cat = Arc::new(Catalog::new());
        let id = cat
            .load_str("d.xml", "<site><a><b/><b/></a><a><b/></a></site>")
            .unwrap();
        let doc = cat.doc(id);
        let sym_a = doc.interner().get("a").unwrap();
        let sym_b = doc.interner().get("b").unwrap();
        let a_nodes: Vec<Pre> = (0..doc.node_count() as Pre)
            .filter(|&p| doc.kind(p) == NodeKind::Element && doc.name(p) == sym_a)
            .collect();
        let b_nodes: Vec<Pre> = (0..doc.node_count() as Pre)
            .filter(|&p| doc.kind(p) == NodeKind::Element && doc.name(p) == sym_b)
            .collect();
        let mut cost = Cost::new();
        let out = execute_edge_op(
            EdgeOpCtx {
                class: EdgeClass::Step(Axis::Child),
                mode: ExecMode::Full,
                doc1: &doc,
                doc2: &doc,
                input1: &a_nodes,
                input2: &b_nodes,
                index1: None,
                index2: None,
                kind1: NodeKind::Element,
                kind2: NodeKind::Element,
                par: Parallelism::Sequential,
                workers: None,
            },
            &mut cost,
        );
        // 2 a-nodes vs 3 b-nodes: executes forward from the a side.
        assert!(out.choice.outer_is_v1);
        let pairs = out.result.into_full();
        assert_eq!(pairs.len(), 3);
        for &(a, b) in &pairs {
            assert_eq!(doc.name(a), sym_a);
            assert_eq!(doc.name(b), sym_b);
            assert!(naive_axis(&doc, Axis::Child, a, b));
        }
    }

    #[test]
    fn predicate_matches_operator_semantics() {
        let cat = Arc::new(Catalog::new());
        let id = cat
            .load_str("d.xml", "<site><a><b/></a><b/></site>")
            .unwrap();
        let doc = cat.doc(id);
        // a (pre 1) has child b (pre 2); the other b (pre 3) is a sibling.
        assert!(edge_predicate(
            EdgeClass::Step(Axis::Child),
            &doc,
            &doc,
            1,
            2
        ));
        assert!(!edge_predicate(
            EdgeClass::Step(Axis::Child),
            &doc,
            &doc,
            1,
            3
        ));
    }
}
