//! Quickstart: load XML, write an XQuery, let ROX optimize and evaluate
//! it at run-time.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use rox_core::{run_rox, RoxOptions};
use rox_xmldb::{serialize_subtree_string, Catalog};
use std::sync::Arc;

fn main() {
    // 1. Load documents into a catalog (fn:doc resolves against it).
    let catalog = Arc::new(Catalog::new());
    catalog
        .load_str(
            "library.xml",
            r#"<library>
                 <book year="2009"><title>ROX</title><author>Abdel Kader</author></book>
                 <book year="2006"><title>MonetDB/XQuery</title><author>Boncz</author></book>
                 <book year="2004"><title>Staircase Join</title><author>Grust</author></book>
               </library>"#,
        )
        .unwrap();
    catalog
        .load_str(
            "awards.xml",
            r#"<awards>
                 <award><winner>Boncz</winner></award>
                 <award><winner>Grust</winner></award>
               </awards>"#,
        )
        .unwrap();

    // 2. An XQuery joining the two documents on author name.
    let query = r#"
        for $b in doc("library.xml")//book,
            $a in $b/author,
            $w in doc("awards.xml")//award/winner
        where $a/text() = $w/text()
        return $b
    "#;

    // 3. Compile to a Join Graph (the paper's "Join Graph isolation").
    let graph = rox_joingraph::compile_query(query).expect("valid query");
    println!("Join Graph:\n{}", graph.dump());

    // 4. Run the ROX run-time optimizer: it samples, picks an order,
    //    executes, and returns the result.
    let report = run_rox(Arc::clone(&catalog), &graph, RoxOptions::default()).unwrap();
    println!(
        "executed {} edges; result rows: {}",
        report.executed_order.len(),
        report.output.len()
    );
    println!(
        "work: {} execution + {} sampling ({:.0}% overhead)",
        report.exec_cost.total(),
        report.sample_cost.total(),
        report.sampling_overhead_pct()
    );

    // 5. Serialize the matched book elements.
    let out_var = graph.tail.output;
    let doc = catalog.doc(report.output.doc_of(out_var));
    for &node in report.output.col(out_var) {
        println!("match: {}", serialize_subtree_string(&doc, node));
    }
}
