//! Columnar relations over XML nodes.
//!
//! The semantics of a Join Graph is "a fully joined relation containing
//! attributes of base relations" (§2.1). [`Relation`] is that intermediate:
//! one column of [`NodeId`]s per Join Graph vertex that has been joined in
//! so far. The ROX evaluator materializes these (the paper's
//! fully-materialized execution model) and derives the per-vertex tables
//! `T(v)` as distinct projections.

use rand::Rng;
use rox_xmldb::NodeId;
use std::collections::HashMap;

/// Identifier of a Join Graph vertex / relation attribute.
pub type VarId = u32;

/// A columnar relation: `cols[i]` holds the binding of `schema[i]` for
/// every row.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Relation {
    schema: Vec<VarId>,
    cols: Vec<Vec<NodeId>>,
}

impl Relation {
    /// An empty relation with the given schema.
    pub fn empty(schema: Vec<VarId>) -> Self {
        let cols = schema.iter().map(|_| Vec::new()).collect();
        Relation { schema, cols }
    }

    /// A single-attribute relation from a node list.
    pub fn single(var: VarId, nodes: Vec<NodeId>) -> Self {
        Relation {
            schema: vec![var],
            cols: vec![nodes],
        }
    }

    /// The attribute list.
    pub fn schema(&self) -> &[VarId] {
        &self.schema
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.cols.first().map_or(0, Vec::len)
    }

    /// True when the relation has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Position of `var` in the schema.
    pub fn col_idx(&self, var: VarId) -> Option<usize> {
        self.schema.iter().position(|&v| v == var)
    }

    /// The column bound to `var`.
    ///
    /// # Panics
    /// Panics when `var` is not in the schema.
    pub fn col(&self, var: VarId) -> &[NodeId] {
        let i = self.col_idx(var).expect("variable not in relation schema");
        &self.cols[i]
    }

    /// Distinct nodes of `var`'s column, sorted in document order — the
    /// paper's `T(v)` as a projection of the component relation.
    pub fn distinct_nodes(&self, var: VarId) -> Vec<NodeId> {
        let mut nodes = self.col(var).to_vec();
        nodes.sort_unstable();
        nodes.dedup();
        nodes
    }

    /// Append one row; `row` must be parallel to the schema.
    pub fn push_row(&mut self, row: &[NodeId]) {
        debug_assert_eq!(row.len(), self.schema.len());
        for (col, &v) in self.cols.iter_mut().zip(row) {
            col.push(v);
        }
    }

    /// Read one row into a buffer.
    pub fn row(&self, i: usize, buf: &mut Vec<NodeId>) {
        buf.clear();
        for col in &self.cols {
            buf.push(col[i]);
        }
    }

    /// Keep only the rows whose index satisfies `keep`.
    pub fn retain_rows(&mut self, keep: &[bool]) {
        debug_assert_eq!(keep.len(), self.len());
        for col in &mut self.cols {
            let mut i = 0;
            col.retain(|_| {
                let k = keep[i];
                i += 1;
                k
            });
        }
    }

    /// Project onto `vars` (clones the columns, preserves row order and
    /// multiplicity).
    pub fn project(&self, vars: &[VarId]) -> Relation {
        let cols = vars.iter().map(|&v| self.col(v).to_vec()).collect();
        Relation {
            schema: vars.to_vec(),
            cols,
        }
    }

    /// Sort rows lexicographically by the given variables (document order
    /// per column) — the `τ` numbering/sort of the plan tail.
    pub fn sort_by(&mut self, vars: &[VarId]) {
        let key_cols: Vec<usize> = vars
            .iter()
            .map(|&v| self.col_idx(v).expect("sort variable not in schema"))
            .collect();
        let mut order: Vec<usize> = (0..self.len()).collect();
        order.sort_by(|&a, &b| {
            for &k in &key_cols {
                let ord = self.cols[k][a].cmp(&self.cols[k][b]);
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        self.reorder(&order);
    }

    fn reorder(&mut self, order: &[usize]) {
        for col in &mut self.cols {
            let new_col: Vec<NodeId> = order.iter().map(|&i| col[i]).collect();
            *col = new_col;
        }
    }

    /// Remove duplicate rows with respect to the full schema (the plan
    /// tail's `δ`). Keeps the first occurrence; row order is otherwise
    /// preserved.
    pub fn distinct(&mut self) {
        use std::collections::HashSet;
        let mut seen: HashSet<Vec<NodeId>> = HashSet::with_capacity(self.len());
        let mut keep = Vec::with_capacity(self.len());
        let mut buf = Vec::new();
        for i in 0..self.len() {
            self.row(i, &mut buf);
            keep.push(seen.insert(buf.clone()));
        }
        self.retain_rows(&keep);
    }

    /// Uniform without-replacement sample of `amount` rows (row order
    /// preserved).
    pub fn sample_rows<R: Rng + ?Sized>(&self, rng: &mut R, amount: usize) -> Relation {
        if amount >= self.len() {
            return self.clone();
        }
        let mut idx: Vec<usize> = rand::seq::index::sample(rng, self.len(), amount).into_vec();
        idx.sort_unstable();
        let cols = self
            .cols
            .iter()
            .map(|col| idx.iter().map(|&i| col[i]).collect())
            .collect();
        Relation {
            schema: self.schema.clone(),
            cols,
        }
    }

    /// Natural composition through a node-level pair list: every
    /// `(a, b)` in `pairs` matches left rows with `col(var_a) == a` against
    /// right rows with `col(var_b) == b`; output rows are the concatenation
    /// of the left and right bindings.
    ///
    /// This is how the evaluator turns a node-level structural or value
    /// join into the component-level join while preserving multiplicities.
    pub fn compose(
        left: &Relation,
        var_a: VarId,
        right: &Relation,
        var_b: VarId,
        pairs: &[(NodeId, NodeId)],
    ) -> Relation {
        let mut left_rows: HashMap<NodeId, Vec<u32>> = HashMap::new();
        for (i, &n) in left.col(var_a).iter().enumerate() {
            left_rows.entry(n).or_default().push(i as u32);
        }
        let mut right_rows: HashMap<NodeId, Vec<u32>> = HashMap::new();
        for (i, &n) in right.col(var_b).iter().enumerate() {
            right_rows.entry(n).or_default().push(i as u32);
        }
        let mut schema = left.schema.clone();
        schema.extend_from_slice(&right.schema);
        let mut out = Relation::empty(schema);
        let mut buf = Vec::new();
        for &(a, b) in pairs {
            let (Some(ls), Some(rs)) = (left_rows.get(&a), right_rows.get(&b)) else {
                continue;
            };
            for &li in ls {
                for &ri in rs {
                    buf.clear();
                    for col in &left.cols {
                        buf.push(col[li as usize]);
                    }
                    for col in &right.cols {
                        buf.push(col[ri as usize]);
                    }
                    out.push_row(&buf);
                }
            }
        }
        out
    }

    /// Extend this relation with a new attribute through row-level pairs
    /// `(row index, node)` — the output of a step/value join executed with
    /// this relation's `var` column as context.
    pub fn expand(&self, pairs: &[(u32, NodeId)], new_var: VarId) -> Relation {
        let mut schema = self.schema.clone();
        schema.push(new_var);
        let mut out = Relation::empty(schema);
        let mut buf = Vec::new();
        for &(row, node) in pairs {
            buf.clear();
            for col in &self.cols {
                buf.push(col[row as usize]);
            }
            buf.push(node);
            out.push_row(&buf);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rox_xmldb::catalog::DocId;

    fn n(pre: u32) -> NodeId {
        NodeId::new(DocId(0), pre)
    }

    fn rel(var: VarId, pres: &[u32]) -> Relation {
        Relation::single(var, pres.iter().map(|&p| n(p)).collect())
    }

    #[test]
    fn single_and_basics() {
        let r = rel(1, &[3, 5, 5]);
        assert_eq!(r.len(), 3);
        assert_eq!(r.schema(), &[1]);
        assert_eq!(r.distinct_nodes(1), vec![n(3), n(5)]);
    }

    #[test]
    fn expand_adds_column_with_multiplicity() {
        let r = rel(1, &[3, 5]);
        let pairs = vec![(0u32, n(10)), (0u32, n(11)), (1u32, n(12))];
        let e = r.expand(&pairs, 2);
        assert_eq!(e.schema(), &[1, 2]);
        assert_eq!(e.len(), 3);
        assert_eq!(e.col(1), &[n(3), n(3), n(5)]);
        assert_eq!(e.col(2), &[n(10), n(11), n(12)]);
    }

    #[test]
    fn compose_cross_multiplies_matching_rows() {
        // left has node 3 twice.
        let left = rel(1, &[3, 3, 5]);
        let right = rel(2, &[7, 8]);
        let pairs = vec![(n(3), n(7)), (n(5), n(8))];
        let j = Relation::compose(&left, 1, &right, 2, &pairs);
        assert_eq!(j.schema(), &[1, 2]);
        assert_eq!(j.len(), 3); // (3,7) ×2 + (5,8)
    }

    #[test]
    fn compose_ignores_pairs_without_rows() {
        let left = rel(1, &[3]);
        let right = rel(2, &[7]);
        let pairs = vec![(n(4), n(7)), (n(3), n(9))];
        let j = Relation::compose(&left, 1, &right, 2, &pairs);
        assert!(j.is_empty());
    }

    #[test]
    fn distinct_removes_duplicate_rows() {
        let mut r = rel(1, &[3, 3, 5, 3]);
        r.distinct();
        assert_eq!(r.col(1), &[n(3), n(5)]);
    }

    #[test]
    fn sort_by_orders_rows() {
        let mut r = Relation::empty(vec![1, 2]);
        r.push_row(&[n(5), n(1)]);
        r.push_row(&[n(3), n(9)]);
        r.push_row(&[n(5), n(0)]);
        r.sort_by(&[1, 2]);
        assert_eq!(r.col(1), &[n(3), n(5), n(5)]);
        assert_eq!(r.col(2), &[n(9), n(0), n(1)]);
    }

    #[test]
    fn project_clones_columns() {
        let mut r = Relation::empty(vec![1, 2]);
        r.push_row(&[n(5), n(1)]);
        let p = r.project(&[2]);
        assert_eq!(p.schema(), &[2]);
        assert_eq!(p.col(2), &[n(1)]);
    }

    #[test]
    fn retain_rows_filters() {
        let mut r = rel(1, &[1, 2, 3, 4]);
        r.retain_rows(&[true, false, true, false]);
        assert_eq!(r.col(1), &[n(1), n(3)]);
    }

    #[test]
    fn sample_rows_is_subset() {
        let r = rel(1, &(0..100).collect::<Vec<_>>());
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let s = r.sample_rows(&mut rng, 10);
        assert_eq!(s.len(), 10);
    }
}
