#![warn(missing_docs)]

//! # rox-ops — physical operators
//!
//! The physical algebra of the paper's Table 1, reimplemented over the
//! pre/size/level store of [`rox_xmldb`]:
//!
//! * [`edgeop`] — the **physical edge-operator kernel**: the single
//!   dispatch layer mapping a Join Graph edge (+ mode) to one of the
//!   operators below, consumed by sampling, chain-sampling, full
//!   execution, replay, enumeration, and the naive oracle alike;
//! * [`staircase`] — structural joins for all XPath axes, pair-producing
//!   and zero-investment in the context input;
//! * [`valjoin`] — value equi-joins (index nested-loop, hash, merge);
//! * [`partition`] — morsel-partitioned parallel variants of the
//!   staircase and hash joins (split the context, merge in document
//!   order; bit-identical to the sequential operators);
//! * [`cutoff`] — cut-off sampled execution with reduction-factor
//!   extrapolation (§2.3);
//! * [`relation`] — the columnar fully-joined intermediate relations;
//! * [`tail`] — projection / distinct / sort tail operators;
//! * [`cost`] — deterministic work accounting following Table 1, plus the
//!   explicit per-edge operator cost function
//!   [`choose_op`](cost::choose_op()).

pub mod axis;
pub mod cost;
pub mod cutoff;
pub mod edgeop;
pub mod partition;
pub mod pool;
pub mod relation;
pub mod staircase;
pub mod tail;
pub mod valjoin;

pub use axis::{Axis, NodeTest};
pub use cost::{
    choose_op, choose_step_kernel, drift_breached, drift_ratio, nl_cheaper, revalidation_budget,
    Cost, StepKernel, DRIFT_ABS_FLOOR, DRIFT_RATIO, NL_VS_HASH_FACTOR, REVALIDATE_BUDGET_PER_CHECK,
    REVALIDATE_SPOT_CHECKS, REVALIDATE_SPOT_TAU, STEP_BITSET_FACTOR, STEP_MERGE_FACTOR,
};
pub use cutoff::JoinOut;
pub use edgeop::{
    edge_predicate, execute_edge_op, execute_edge_op_with, DenseState, EdgeClass, EdgeOpChoice,
    EdgeOpCtx, EdgeOpKind, EdgeOpOut, EdgeOpResult, ExecMode,
};
pub use partition::{
    hash_value_join_partitioned, hash_value_join_partitioned_with, step_join_partitioned,
    step_join_partitioned_scratch, MIN_PARTITION_INPUT,
};
pub use pool::{PoolStats, ScratchPool, MAX_POOLED_PER_SHAPE};
pub use relation::{Relation, VarId};
pub use rox_index::{PreSet, SymbolTable};
pub use rox_par::Parallelism;
pub use staircase::{naive_axis, step_join, step_join_kernel, step_join_scratch, StepScratch};
pub use tail::Tail;
pub use valjoin::{
    hash_value_join, hash_value_join_with, index_value_join, index_value_join_set,
    index_value_join_set_pooled, merge_value_join, sorted_by_value,
};
