//! [`IndexedStore`]: a catalog whose documents carry their element and
//! value indices — the complete "execution environment" of the paper
//! (storage + structural/value indices) that ROX's run-time optimizer
//! probes.

use crate::element::ElementIndex;
use crate::value::ValueIndex;
use rox_xmldb::{Catalog, DocId, Document};
use std::collections::HashMap;
use std::sync::Arc;

/// Both indices of one document.
pub struct DocIndexes {
    /// The element (qname) index.
    pub element: ElementIndex,
    /// The text/attribute value index.
    pub value: ValueIndex,
}

impl DocIndexes {
    /// Build both indices for `doc`.
    pub fn build(doc: &Document) -> Self {
        DocIndexes {
            element: ElementIndex::build(doc),
            value: ValueIndex::build(doc),
        }
    }
}

/// A document catalog plus lazily built per-document indices.
pub struct IndexedStore {
    catalog: Arc<Catalog>,
    indexes: parking_lot_free::Mutex<HashMap<DocId, Arc<DocIndexes>>>,
}

/// Minimal std-based mutex alias so this crate does not need parking_lot.
mod parking_lot_free {
    pub use std::sync::Mutex;
}

impl IndexedStore {
    /// Wrap an existing catalog.
    pub fn new(catalog: Arc<Catalog>) -> Self {
        IndexedStore {
            catalog,
            indexes: parking_lot_free::Mutex::new(HashMap::new()),
        }
    }

    /// The underlying catalog.
    pub fn catalog(&self) -> &Arc<Catalog> {
        &self.catalog
    }

    /// The document with id `id`.
    pub fn doc(&self, id: DocId) -> Arc<Document> {
        self.catalog.doc(id)
    }

    /// The indices of document `id`, building them on first access.
    pub fn indexes(&self, id: DocId) -> Arc<DocIndexes> {
        let mut map = self.indexes.lock().expect("index cache poisoned");
        if let Some(idx) = map.get(&id) {
            return Arc::clone(idx);
        }
        let idx = Arc::new(DocIndexes::build(&self.catalog.doc(id)));
        map.insert(id, Arc::clone(&idx));
        idx
    }

    /// Drop cached indices (used after re-loading a document in tests).
    pub fn invalidate(&self, id: DocId) {
        self.indexes
            .lock()
            .expect("index cache poisoned")
            .remove(&id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexes_are_cached() {
        let cat = Arc::new(Catalog::new());
        let id = cat.load_str("a.xml", "<a><b/><b/></a>").unwrap();
        let store = IndexedStore::new(cat);
        let i1 = store.indexes(id);
        let i2 = store.indexes(id);
        assert!(Arc::ptr_eq(&i1, &i2));
    }

    #[test]
    fn element_counts_via_store() {
        let cat = Arc::new(Catalog::new());
        let id = cat.load_str("a.xml", "<a><b/><c/><b/></a>").unwrap();
        let store = IndexedStore::new(Arc::clone(&cat));
        let b = cat.interner().get("b").unwrap();
        assert_eq!(store.indexes(id).element.count(b), 2);
    }

    #[test]
    fn invalidate_rebuilds() {
        let cat = Arc::new(Catalog::new());
        let id = cat.load_str("a.xml", "<a><b/></a>").unwrap();
        let store = IndexedStore::new(Arc::clone(&cat));
        let b = cat.interner().get("b").unwrap();
        assert_eq!(store.indexes(id).element.count(b), 1);
        cat.load_str("a.xml", "<a><b/><b/></a>").unwrap();
        store.invalidate(id);
        assert_eq!(store.indexes(id).element.count(b), 2);
    }
}
