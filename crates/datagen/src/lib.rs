#![warn(missing_docs)]

//! # rox-datagen — synthetic workloads for the ROX experiments
//!
//! The paper evaluates on two datasets we cannot ship: the XMark auction
//! benchmark document and the DBLP dump split per venue. This crate
//! regenerates both *with the statistical properties the experiments
//! depend on* (see DESIGN.md's substitution table):
//!
//! * [`xmark`] — an auction document whose bidder counts correlate with
//!   the `current` price (§3.2's correlation);
//! * [`dblp`] — the 23 venues of Table 3 with per-research-area author
//!   pools (correlated within-area join selectivities), ×n replication,
//!   the query template of §4.1, and the correlation measure `C` of §4.3;
//! * [`fixture`] — disk-cached fixture snapshots (`rox-storage`), so
//!   heavyweight test binaries share one generated corpus instead of
//!   regenerating it per binary.

pub mod dblp;
pub mod fixture;
pub mod xmark;

pub use dblp::{
    correlation, dblp_query, generate_dblp, group_of, grouped_combinations, join_size, venue_index,
    venue_uri, Area, DblpConfig, DblpCorpus, Venue, VENUES,
};
pub use fixture::shared_xmark_catalog;
pub use xmark::{generate_xmark, xmark_query, XmarkConfig};
