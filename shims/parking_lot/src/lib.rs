//! Offline stand-in for `parking_lot`: non-poisoning `Mutex`/`RwLock`
//! wrappers over `std::sync`. Lock poisoning is translated into a panic
//! propagation (matching parking_lot's behaviour of simply not poisoning).

use std::sync;

/// A mutual-exclusion lock whose `lock()` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock.
    pub fn lock(&self) -> sync::MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A readers-writer lock whose guards never report poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(*r1, *r2);
        }
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
