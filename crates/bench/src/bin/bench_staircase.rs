//! Staircase-kernel benchmark binary: per-axis probe vs merge vs bitset
//! kernel throughput, the fig-8 work-counter anchor, and cold vs
//! warm-replay engine latency. Writes the machine-readable
//! `BENCH_staircase.json` consumed by CI.
//!
//! ```text
//! cargo run --release -p rox-bench --bin bench_staircase -- \
//!     [--smoke] [--out BENCH_staircase.json] [--persons 3000] \
//!     [--items 2500] [--auctions 2500] [--rounds 20] [--repeats 3]
//! ```

use rox_bench::args::Args;
use rox_bench::staircase::{self, StaircaseBenchConfig};

fn main() {
    let args = Args::from_env();
    let mut cfg = if args.has("smoke") {
        StaircaseBenchConfig::smoke()
    } else {
        StaircaseBenchConfig::default()
    };
    cfg.xmark.persons = args.get("persons", cfg.xmark.persons);
    cfg.xmark.items = args.get("items", cfg.xmark.items);
    cfg.xmark.auctions = args.get("auctions", cfg.xmark.auctions);
    cfg.rounds = args.get("rounds", cfg.rounds);
    cfg.repeats = args.get("repeats", cfg.repeats);
    let out_path = args.get("out", "BENCH_staircase.json".to_string());

    println!(
        "staircase kernel bench — XMark persons={} items={} auctions={}, {} rounds",
        cfg.xmark.persons, cfg.xmark.items, cfg.xmark.auctions, cfg.rounds
    );
    let r = staircase::run(&cfg);
    print!("{}", staircase::render(&r));

    let json = staircase::to_json(&cfg, &r);
    std::fs::write(&out_path, &json).expect("write BENCH_staircase.json");
    println!("\nwrote {out_path}");
}
