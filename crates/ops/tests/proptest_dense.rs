//! Dense-layout equivalence property tests: the CSR [`SymbolTable`] and
//! the [`PreSet`] bitset must be **bit-identical** — pairs, order, and
//! cost counters — to the `HashMap<Symbol, Vec<Pre>>` build/probe loop and
//! the per-hit `binary_search` filter they replaced. The `hash_*` /
//! `bsearch_*` functions below reimplement that original logic verbatim on
//! top of the raw document API, mirroring the kernel-equivalence suite in
//! `proptest_edgeop.rs`.
//!
//! Edge cases pinned explicitly: the empty symbol universe (no build
//! input at all) and the maximum interned symbol sitting exactly at the
//! CSR boundary.

use proptest::prelude::*;
use rox_index::{PreSet, SymbolTable, ValueIndex};
use rox_ops::{hash_value_join, index_value_join, Cost};
use rox_xmldb::{Catalog, Document, NodeKind, Pre, Symbol};
use std::collections::HashMap;
use std::sync::Arc;

// ---------------------------------------------------------------------
// Pre-refactor reference implementations (the logic formerly inlined in
// valjoin.rs).
// ---------------------------------------------------------------------

/// The original hash-join build loop: `HashMap<Symbol, Vec<Pre>>` with one
/// `charge_in` per build tuple.
fn hash_build(build_doc: &Document, build: &[Pre], cost: &mut Cost) -> HashMap<Symbol, Vec<Pre>> {
    let mut table: HashMap<Symbol, Vec<Pre>> = HashMap::with_capacity(build.len());
    for &p in build {
        cost.charge_in(1);
        table.entry(build_doc.value(p)).or_default().push(p);
    }
    table
}

/// The original probe loop over the hash table.
fn hash_probe(
    table: &HashMap<Symbol, Vec<Pre>>,
    probe_doc: &Document,
    probe: &[Pre],
    build_left: bool,
    cost: &mut Cost,
    out: &mut Vec<(Pre, Pre)>,
) {
    for &p in probe {
        cost.charge_in(1);
        cost.charge_probe(1);
        if let Some(matches) = table.get(&probe_doc.value(p)) {
            for &m in matches {
                cost.charge_out(1);
                if build_left {
                    out.push((m, p));
                } else {
                    out.push((p, m));
                }
            }
        }
    }
}

/// The original `hash_value_join`: build on the smaller side, probe with
/// the larger, orient pairs `(left, right)`.
fn hash_value_join_reference(
    left_doc: &Document,
    left: &[Pre],
    right_doc: &Document,
    right: &[Pre],
    cost: &mut Cost,
) -> Vec<(Pre, Pre)> {
    let build_left = left.len() <= right.len();
    let (build_doc, build, probe_doc, probe) = if build_left {
        (left_doc, left, right_doc, right)
    } else {
        (right_doc, right, left_doc, left)
    };
    let table = hash_build(build_doc, build, cost);
    let mut out = Vec::new();
    hash_probe(&table, probe_doc, probe, build_left, cost, &mut out);
    out
}

/// The original `index_value_join` with the per-hit `binary_search`
/// membership filter.
fn index_value_join_reference(
    outer_doc: &Document,
    outer: &[Pre],
    inner_index: &ValueIndex,
    inner_filter: Option<&[Pre]>,
    limit: Option<usize>,
    cost: &mut Cost,
) -> (Vec<(u32, Pre)>, bool) {
    let limit = limit.unwrap_or(usize::MAX);
    let mut pairs: Vec<(u32, Pre)> = Vec::new();
    let mut truncated = false;
    'outer: for (row, &c) in outer.iter().enumerate() {
        let row = row as u32;
        cost.charge_in(1);
        cost.charge_probe(1);
        for &s in inner_index.text_eq(outer_doc.value(c)) {
            if let Some(filter) = inner_filter {
                cost.charge_probe(1);
                if filter.binary_search(&s).is_err() {
                    continue;
                }
            }
            pairs.push((row, s));
            cost.charge_out(1);
            if pairs.len() >= limit {
                truncated = true;
                break 'outer;
            }
        }
    }
    (pairs, truncated)
}

// ---------------------------------------------------------------------
// Input generators.
// ---------------------------------------------------------------------

fn value_doc(vals: &[u8]) -> String {
    let mut s = String::from("<r>");
    for &v in vals {
        s.push_str(&format!("<t>k{}</t>", v % 16));
    }
    s.push_str("</r>");
    s
}

fn texts(doc: &Document) -> Vec<Pre> {
    (0..doc.node_count() as Pre)
        .filter(|&p| doc.kind(p) == NodeKind::Text)
        .collect()
}

fn subset(nodes: &[Pre], mask: u64) -> Vec<Pre> {
    nodes
        .iter()
        .copied()
        .enumerate()
        .filter(|(i, _)| (mask >> (i % 64)) & 1 == 1 || *i >= 64)
        .map(|(_, p)| p)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The CSR table groups exactly like the hash map: same members per
    /// symbol, same within-group order, same distinct-symbol count.
    #[test]
    fn csr_table_matches_hash_map_grouping(
        vals in prop::collection::vec(any::<u8>(), 0..60),
        mask in any::<u64>(),
    ) {
        let cat = Arc::new(Catalog::new());
        let id = cat.load_str("d.xml", &value_doc(&vals)).unwrap();
        let doc = cat.doc(id);
        let nodes = subset(&texts(&doc), mask);
        let symbols: Vec<Symbol> = nodes.iter().map(|&p| doc.value(p)).collect();
        let csr = SymbolTable::from_pairs(&symbols, &nodes);
        let mut reference: HashMap<Symbol, Vec<Pre>> = HashMap::new();
        for (&s, &p) in symbols.iter().zip(&nodes) {
            reference.entry(s).or_default().push(p);
        }
        prop_assert_eq!(csr.build_len(), nodes.len());
        prop_assert_eq!(csr.distinct_symbols(), reference.len());
        for (&sym, group) in &reference {
            prop_assert_eq!(csr.get(sym), group.as_slice());
        }
        // Symbols outside the build input resolve to the empty group, even
        // far beyond the built universe.
        let max_sym = symbols.iter().map(|s| s.0).max().unwrap_or(0);
        prop_assert_eq!(csr.get(Symbol(max_sym + 1)), &[] as &[Pre]);
        prop_assert_eq!(csr.get(Symbol(u32::MAX)), &[] as &[Pre]);
    }

    /// The bitset answers every membership probe exactly like
    /// `binary_search` over the sorted slice — including probes beyond the
    /// largest member.
    #[test]
    fn bitset_matches_binary_search(
        members in prop::collection::vec(0u32..512, 0..64),
        probes in prop::collection::vec(0u32..600, 0..80),
    ) {
        let mut sorted: Vec<Pre> = members;
        sorted.sort_unstable();
        sorted.dedup();
        let universe = sorted.last().map(|&p| p as usize + 1).unwrap_or(0);
        let set = PreSet::from_nodes(universe, &sorted);
        prop_assert_eq!(set.len(), sorted.len());
        for &p in &probes {
            prop_assert_eq!(set.contains(p), sorted.binary_search(&p).is_ok(), "probe {}", p);
        }
    }

    /// Production `hash_value_join` (CSR build + probe) is bit-identical —
    /// pairs, order, and cost counters — to the hash-map reference.
    #[test]
    fn csr_join_matches_hash_join_reference(
        l in prop::collection::vec(any::<u8>(), 0..50),
        r in prop::collection::vec(any::<u8>(), 0..50),
        m1 in any::<u64>(),
        m2 in any::<u64>(),
    ) {
        let cat = Arc::new(Catalog::new());
        let a = cat.load_str("a.xml", &value_doc(&l)).unwrap();
        let b = cat.load_str("b.xml", &value_doc(&r)).unwrap();
        let (da, db) = (cat.doc(a), cat.doc(b));
        let t1 = subset(&texts(&da), m1);
        let t2 = subset(&texts(&db), m2);
        let mut ref_cost = Cost::new();
        let expected = hash_value_join_reference(&da, &t1, &db, &t2, &mut ref_cost);
        let mut csr_cost = Cost::new();
        let got = hash_value_join(&da, &t1, &db, &t2, &mut csr_cost);
        prop_assert_eq!(got, expected);
        prop_assert_eq!(csr_cost, ref_cost);
    }

    /// Production `index_value_join` (bitset filter) is bit-identical —
    /// pairs, order, truncation, and cost counters — to the binary-search
    /// reference, with and without a cut-off.
    #[test]
    fn bitset_filter_matches_binary_search_reference(
        l in prop::collection::vec(any::<u8>(), 0..50),
        r in prop::collection::vec(any::<u8>(), 0..50),
        m1 in any::<u64>(),
        m2 in any::<u64>(),
        limit_raw in 0usize..25,
        filtered in any::<bool>(),
    ) {
        // 0 encodes "no cut-off" (the shimmed proptest has no option::of).
        let limit = (limit_raw > 0).then_some(limit_raw);
        let cat = Arc::new(Catalog::new());
        let a = cat.load_str("a.xml", &value_doc(&l)).unwrap();
        let b = cat.load_str("b.xml", &value_doc(&r)).unwrap();
        let (da, db) = (cat.doc(a), cat.doc(b));
        let ib = ValueIndex::build(&db);
        let outer = subset(&texts(&da), m1);
        let filter = subset(&texts(&db), m2);
        let filter = filtered.then_some(filter.as_slice());
        let mut ref_cost = Cost::new();
        let (expected, expected_trunc) =
            index_value_join_reference(&da, &outer, &ib, filter, limit, &mut ref_cost);
        let mut set_cost = Cost::new();
        let got = index_value_join(&da, &outer, &ib, NodeKind::Text, filter, limit, &mut set_cost);
        prop_assert_eq!(got.pairs, expected);
        prop_assert_eq!(got.truncated, expected_trunc);
        prop_assert_eq!(set_cost, ref_cost);
    }
}

// ---------------------------------------------------------------------
// Deterministic edge cases.
// ---------------------------------------------------------------------

#[test]
fn empty_symbol_universe_join() {
    // Documents whose selected inputs are empty: no symbols are ever fed
    // to the CSR build, and every probe must come back empty with the
    // reference's exact cost charges.
    let cat = Arc::new(Catalog::new());
    let a = cat.load_str("a.xml", "<r><t>x</t></r>").unwrap();
    let b = cat.load_str("b.xml", "<r><t>y</t></r>").unwrap();
    let (da, db) = (cat.doc(a), cat.doc(b));
    let probe = texts(&da);
    let mut ref_cost = Cost::new();
    let expected = hash_value_join_reference(&da, &probe, &db, &[], &mut ref_cost);
    let mut csr_cost = Cost::new();
    let got = hash_value_join(&da, &probe, &db, &[], &mut csr_cost);
    assert!(got.is_empty());
    assert_eq!(got, expected);
    assert_eq!(csr_cost, ref_cost);
}

#[test]
fn max_symbol_probe_is_safe() {
    // Probing with the interner's largest symbol (and beyond) must answer
    // the empty group on a table built from a smaller universe.
    let cat = Arc::new(Catalog::new());
    let a = cat.load_str("a.xml", "<r><t>lo</t></r>").unwrap();
    let da = cat.doc(a);
    let nodes = texts(&da);
    let symbols: Vec<Symbol> = nodes.iter().map(|&p| da.value(p)).collect();
    let table = SymbolTable::from_pairs(&symbols, &nodes);
    // Intern a new, strictly larger symbol after the build.
    let late = da.interner().intern("zz-late-symbol");
    assert!(late.0 > symbols.iter().map(|s| s.0).max().unwrap());
    assert_eq!(table.get(late), &[] as &[Pre]);
    assert_eq!(table.get(symbols[0]), &[nodes[0]]);
}

#[test]
fn empty_filter_set_blocks_everything() {
    // An empty (zero-universe) filter set: charges per hit still accrue,
    // pairs never materialize — exactly like binary_search on &[].
    let cat = Arc::new(Catalog::new());
    let a = cat.load_str("a.xml", "<r><t>k</t></r>").unwrap();
    let b = cat.load_str("b.xml", "<r><t>k</t></r>").unwrap();
    let (da, db) = (cat.doc(a), cat.doc(b));
    let ib = ValueIndex::build(&db);
    let outer = texts(&da);
    let mut ref_cost = Cost::new();
    let (expected, _) =
        index_value_join_reference(&da, &outer, &ib, Some(&[]), None, &mut ref_cost);
    let mut set_cost = Cost::new();
    let got = index_value_join(
        &da,
        &outer,
        &ib,
        NodeKind::Text,
        Some(&[]),
        None,
        &mut set_cost,
    );
    assert!(got.pairs.is_empty());
    assert_eq!(got.pairs, expected);
    assert_eq!(set_cost, ref_cost);
}
