//! The plan-enumeration tool of §4.2: join orders and canonical step
//! placements for star-shaped value-join queries (the DBLP workload).
//!
//! A "join order" fixes the order of the equi-joins (18 distinct linear
//! and bushy orders for the 4-way query, Fig. 5's legend); a "placement"
//! fixes where the XPath steps run relative to the joins:
//!
//! * `SJ`  — all steps first, then the joins;
//! * `JS`  — one step first, then all joins, remaining steps last;
//! * `S_J` — each document's steps right after the document is joined in.

use crate::env::RoxEnv;
use crate::state::EvalState;
use rox_joingraph::{EdgeId, EdgeKind, JoinGraph, VertexId};
use std::collections::{HashSet, VecDeque};

/// One document's slice of a star query.
#[derive(Debug, Clone)]
pub struct Member {
    /// The value vertex participating in the equi-join class.
    pub value_vertex: VertexId,
    /// Non-redundant step edges that constrain it, outermost first.
    pub prep_edges: Vec<EdgeId>,
    /// Document URI (for display).
    pub doc_uri: String,
}

/// A query whose equi-joins form one equivalence class over k documents.
#[derive(Debug, Clone)]
pub struct StarQuery {
    /// Members in appearance order.
    pub members: Vec<Member>,
}

/// Recognize the star structure; `None` when the graph does not match
/// (e.g. the XMark queries, which have two separate join pairs).
pub fn analyze_star(graph: &JoinGraph) -> Option<StarQuery> {
    let value_vertices: Vec<VertexId> = {
        let mut vs: HashSet<VertexId> = HashSet::new();
        for e in graph.edges() {
            if matches!(e.kind, EdgeKind::EquiJoin { .. }) {
                vs.insert(e.v1);
                vs.insert(e.v2);
            }
        }
        let mut vs: Vec<VertexId> = vs.into_iter().collect();
        vs.sort_unstable();
        vs
    };
    if value_vertices.len() < 2 {
        return None;
    }
    // All value vertices must be pairwise connected (the closure has run).
    for (i, &a) in value_vertices.iter().enumerate() {
        for &b in &value_vertices[i + 1..] {
            if !graph.has_edge_between(a, b) {
                return None;
            }
        }
    }
    // Each member: the step edges reachable from its value vertex without
    // crossing equi-join or redundant edges.
    let mut members = Vec::new();
    let mut claimed: HashSet<EdgeId> = HashSet::new();
    for &v in &value_vertices {
        let mut prep = Vec::new();
        let mut depth: Vec<(EdgeId, usize)> = Vec::new();
        let mut seen_v: HashSet<VertexId> = HashSet::new();
        let mut q = VecDeque::new();
        q.push_back((v, 0usize));
        seen_v.insert(v);
        while let Some((cur, d)) = q.pop_front() {
            for &e in graph.edges_of(cur) {
                let edge = graph.edge(e);
                if edge.redundant || !edge.is_step() || claimed.contains(&e) {
                    continue;
                }
                let other = edge.other(cur);
                if claimed.insert(e) {
                    depth.push((e, d));
                }
                if seen_v.insert(other) {
                    q.push_back((other, d + 1));
                }
            }
        }
        // Outermost (farthest from the value vertex) first.
        depth.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        prep.extend(depth.into_iter().map(|(e, _)| e));
        members.push(Member {
            value_vertex: v,
            prep_edges: prep,
            doc_uri: graph.vertex(v).doc_uri.clone(),
        });
    }
    // Every non-redundant edge must be covered (steps by preps, the rest
    // equi-joins) or the graph has structure the enumerator cannot place.
    let covered: usize = members.iter().map(|m| m.prep_edges.len()).sum();
    let steps = graph
        .edges()
        .iter()
        .filter(|e| e.is_step() && !e.redundant)
        .count();
    if covered != steps {
        return None;
    }
    Some(StarQuery { members })
}

/// A join order: a sequence of component merges, each named by the member
/// indices whose components it connects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinOrder {
    /// Display name in the paper's notation, e.g. `(2-1)-3-4`.
    pub name: String,
    /// Member-index pairs to merge, in order.
    pub merges: Vec<(usize, usize)>,
}

/// Enumerate all distinct join orders for `k` members (2 ≤ k ≤ 4):
/// 1 for k=2, 3 for k=3, and the paper's 18 for k=4 (12 linear + 6 bushy).
pub fn enumerate_join_orders(k: usize) -> Vec<JoinOrder> {
    assert!(
        (2..=4).contains(&k),
        "join-order enumeration supports 2..=4 members"
    );
    let mut out = Vec::new();
    match k {
        2 => out.push(JoinOrder {
            name: "(1-2)".into(),
            merges: vec![(0, 1)],
        }),
        3 => {
            for (i, j) in [(0, 1), (0, 2), (1, 2)] {
                let rest = (0..3).find(|x| *x != i && *x != j).unwrap();
                out.push(JoinOrder {
                    name: format!("({}-{})-{}", i + 1, j + 1, rest + 1),
                    merges: vec![(i, j), (i, rest)],
                });
            }
        }
        4 => {
            let pairs = [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)];
            for &(i, j) in &pairs {
                let rest: Vec<usize> = (0..4).filter(|x| *x != i && *x != j).collect();
                let (k1, k2) = (rest[0], rest[1]);
                // Linear: two orders of the remaining attachments.
                out.push(JoinOrder {
                    name: format!("({}-{})-{}-{}", i + 1, j + 1, k1 + 1, k2 + 1),
                    merges: vec![(i, j), (i, k1), (i, k2)],
                });
                out.push(JoinOrder {
                    name: format!("({}-{})-{}-{}", i + 1, j + 1, k2 + 1, k1 + 1),
                    merges: vec![(i, j), (i, k2), (i, k1)],
                });
                // Bushy: the other pair joins on its own first.
                out.push(JoinOrder {
                    name: format!("({}-{})-({}-{})", i + 1, j + 1, k1 + 1, k2 + 1),
                    merges: vec![(i, j), (k1, k2), (i, k1)],
                });
            }
        }
        _ => unreachable!(),
    }
    out
}

/// Canonical step placements (§4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// All steps before all joins.
    SJ,
    /// One step, all joins, remaining steps.
    JS,
    /// Steps interleaved right after each document joins.
    SJInterleaved,
}

impl Placement {
    /// All three canonical placements.
    pub const ALL: [Placement; 3] = [Placement::SJ, Placement::JS, Placement::SJInterleaved];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Placement::SJ => "SJ",
            Placement::JS => "JS",
            Placement::SJInterleaved => "S_J",
        }
    }
}

/// Materialize a `(join order, placement)` pair into an edge sequence
/// executable by [`run_plan`](crate::plan::run_plan).
pub fn plan_edges(
    graph: &JoinGraph,
    star: &StarQuery,
    order: &JoinOrder,
    placement: Placement,
) -> Vec<EdgeId> {
    // The equi edge connecting two members (exists by closure).
    let join_edge = |a: usize, b: usize| -> EdgeId {
        let va = star.members[a].value_vertex;
        let vb = star.members[b].value_vertex;
        graph
            .edges_of(va)
            .iter()
            .copied()
            .find(|&e| {
                let edge = graph.edge(e);
                matches!(edge.kind, EdgeKind::EquiJoin { .. }) && edge.other(va) == vb
            })
            .expect("closure edge between members")
    };
    // Member appearance order.
    let mut appearance: Vec<usize> = Vec::new();
    for &(a, b) in &order.merges {
        for m in [a, b] {
            if !appearance.contains(&m) {
                appearance.push(m);
            }
        }
    }
    let joins: Vec<EdgeId> = order.merges.iter().map(|&(a, b)| join_edge(a, b)).collect();
    let mut edges = Vec::new();
    match placement {
        Placement::SJ => {
            for &m in &appearance {
                edges.extend_from_slice(&star.members[m].prep_edges);
            }
            edges.extend_from_slice(&joins);
        }
        Placement::JS => {
            edges.extend_from_slice(&star.members[appearance[0]].prep_edges);
            edges.extend_from_slice(&joins);
            for &m in &appearance[1..] {
                edges.extend_from_slice(&star.members[m].prep_edges);
            }
        }
        Placement::SJInterleaved => {
            let mut prepped: HashSet<usize> = HashSet::new();
            let first = order.merges[0].0;
            edges.extend_from_slice(&star.members[first].prep_edges);
            prepped.insert(first);
            for (idx, &(a, b)) in order.merges.iter().enumerate() {
                edges.push(joins[idx]);
                for m in [a, b] {
                    if prepped.insert(m) {
                        edges.extend_from_slice(&star.members[m].prep_edges);
                    }
                }
            }
        }
    }
    // The join-equivalence closure leaves (k·(k-1)/2 − (k−1)) equi edges
    // unused by any spanning order; once the spanning joins ran they are
    // trivially satisfied (value equality is transitive) and execute as
    // no-op selections at the end.
    for e in graph.edges() {
        if !e.redundant && matches!(e.kind, EdgeKind::EquiJoin { .. }) && !edges.contains(&e.id) {
            edges.push(e.id);
        }
    }
    edges
}

/// The classical compile-time baseline of §4.2: exact cardinalities inside
/// each document (it "can correctly estimate the result size of an
/// operator executed in the context of a single document"), and a
/// smallest-input-first linear order across documents, where cross-
/// document join selectivities are unknown. The isolated prep-chain
/// executions run through [`EvalState::execute_edge`] and hence the same
/// edge-operator kernel as every other phase.
pub fn classical_join_order(env: &RoxEnv, graph: &JoinGraph, star: &StarQuery) -> JoinOrder {
    // Exact per-document constrained cardinality of each value vertex:
    // execute the member's prep chain in isolation (single-document work a
    // classical optimizer can estimate precisely from statistics).
    let mut sizes: Vec<(usize, usize)> = star
        .members
        .iter()
        .enumerate()
        .map(|(i, m)| {
            let mut st = EvalState::new(env, graph);
            for e in graph.edges() {
                if e.redundant {
                    st.mark_executed(e.id);
                }
            }
            for &e in &m.prep_edges {
                st.execute_edge(e, None);
            }
            (i, st.card(m.value_vertex))
        })
        .collect();
    sizes.sort_by_key(|&(i, c)| (c, i));
    let seq: Vec<usize> = sizes.iter().map(|&(i, _)| i).collect();
    let mut merges = vec![(seq[0], seq[1])];
    for &m in &seq[2..] {
        merges.push((seq[0], m));
    }
    let name = {
        let mut s = format!("classical:({}-{})", seq[0] + 1, seq[1] + 1);
        for &m in &seq[2..] {
            s.push_str(&format!("-{}", m + 1));
        }
        s
    };
    JoinOrder { name, merges }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::run_plan;
    use rox_joingraph::compile_query;
    use rox_xmldb::Catalog;
    use std::sync::Arc;

    const DBLP_Q: &str = r#"
        for $a1 in doc("D1.xml")//author,
            $a2 in doc("D2.xml")//author,
            $a3 in doc("D3.xml")//author,
            $a4 in doc("D4.xml")//author
        where $a1/text() = $a2/text() and
              $a1/text() = $a3/text() and
              $a1/text() = $a4/text()
        return $a1
    "#;

    fn doc(authors: &[&str]) -> String {
        let mut s = String::from("<j>");
        for a in authors {
            s.push_str(&format!(
                "<article><author>{a}</author><title>t</title></article>"
            ));
        }
        s.push_str("</j>");
        s
    }

    fn setup() -> (Arc<Catalog>, JoinGraph) {
        let cat = Arc::new(Catalog::new());
        cat.load_str("D1.xml", &doc(&["ann", "bob", "cat"]))
            .unwrap();
        cat.load_str("D2.xml", &doc(&["ann", "bob"])).unwrap();
        cat.load_str("D3.xml", &doc(&["ann", "dan", "eva", "fox"]))
            .unwrap();
        cat.load_str("D4.xml", &doc(&["ann"])).unwrap();
        (cat, compile_query(DBLP_Q).unwrap())
    }

    #[test]
    fn analyze_finds_four_members() {
        let (_cat, g) = setup();
        let star = analyze_star(&g).unwrap();
        assert_eq!(star.members.len(), 4);
        for m in &star.members {
            assert_eq!(m.prep_edges.len(), 1, "author/text step only");
        }
    }

    #[test]
    fn eighteen_orders_for_four_members() {
        let orders = enumerate_join_orders(4);
        assert_eq!(orders.len(), 18);
        let names: HashSet<String> = orders.iter().map(|o| o.name.clone()).collect();
        assert_eq!(names.len(), 18, "names unique");
        assert!(names.contains("(1-2)-3-4"));
        assert!(names.contains("(3-4)-(1-2)"));
    }

    #[test]
    fn all_orders_and_placements_agree_on_output() {
        let (cat, g) = setup();
        let star = analyze_star(&g).unwrap();
        let mut reference: Option<rox_ops::Relation> = None;
        for order in enumerate_join_orders(4) {
            for placement in Placement::ALL {
                let edges = plan_edges(&g, &star, &order, placement);
                let run = run_plan(Arc::clone(&cat), &g, &edges).unwrap();
                match &reference {
                    None => reference = Some(run.output),
                    Some(r) => assert_eq!(
                        r,
                        &run.output,
                        "order {} placement {}",
                        order.name,
                        placement.label()
                    ),
                }
            }
        }
        // Only "ann" appears in all four documents.
        assert_eq!(reference.unwrap().len(), 1);
    }

    #[test]
    fn classical_prefers_smallest_inputs_first() {
        let (cat, g) = setup();
        let star = analyze_star(&g).unwrap();
        let env = RoxEnv::new(cat, &g).unwrap();
        let order = classical_join_order(&env, &g, &star);
        // D4 (1 author) and D2 (2 authors) are smallest.
        assert_eq!(order.merges[0], (3, 1));
        assert_eq!(order.merges.len(), 3);
    }

    #[test]
    fn xmark_query_is_not_a_star() {
        let g = compile_query(
            r#"
            let $d := doc("x.xml")
            for $o in $d//open_auction, $p in $d//person, $i in $d//item
            where $o//personref/@person = $p/@id and $o//itemref/@item = $i/@id
            return $o
        "#,
        )
        .unwrap();
        assert!(analyze_star(&g).is_none(), "two separate join pairs");
    }

    #[test]
    fn three_member_enumeration() {
        let orders = enumerate_join_orders(3);
        assert_eq!(orders.len(), 3);
    }
}
