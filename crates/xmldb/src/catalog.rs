//! The document catalog: maps `fn:doc(url)` URIs to loaded documents.
//!
//! In XQuery the documents a query touches may only become known at
//! run-time (`fn:doc` takes a run-time parameter) — one of the paper's
//! arguments for run-time optimization (§1). The catalog is the run-time
//! component that resolves those URIs. All documents registered in one
//! catalog share a single string [`Interner`], so cross-document value
//! joins can compare interned symbols instead of strings.

use crate::doc::{Document, DocumentBuilder};
use crate::interner::Interner;
use crate::parser::{ParseError, XmlEvent, XmlParser};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// A dense document identifier assigned by the catalog at load time.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct DocId(pub u32);

impl DocId {
    /// The raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for DocId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "doc#{}", self.0)
    }
}

/// A thread-safe collection of loaded documents sharing one interner.
pub struct Catalog {
    interner: Arc<Interner>,
    inner: RwLock<CatalogInner>,
}

#[derive(Default)]
struct CatalogInner {
    docs: Vec<Arc<Document>>,
    by_uri: HashMap<String, DocId>,
}

impl Default for Catalog {
    fn default() -> Self {
        Self::new()
    }
}

impl Catalog {
    /// Create an empty catalog.
    pub fn new() -> Self {
        Catalog {
            interner: Arc::new(Interner::new()),
            inner: RwLock::new(CatalogInner::default()),
        }
    }

    /// The interner shared by all documents of this catalog.
    pub fn interner(&self) -> &Arc<Interner> {
        &self.interner
    }

    /// Parse `input` and register it under `uri`.
    ///
    /// Re-loading an existing URI replaces the document but keeps its id.
    pub fn load_str(&self, uri: &str, input: &str) -> Result<DocId, ParseError> {
        let doc = self.parse_with_shared_interner(uri, input)?;
        Ok(self.insert(uri, doc))
    }

    /// Register an already-built document under `uri`.
    pub fn insert(&self, uri: &str, doc: Arc<Document>) -> DocId {
        let mut inner = self.inner.write();
        if let Some(&id) = inner.by_uri.get(uri) {
            inner.docs[id.index()] = doc.with_id(id);
            return id;
        }
        let id = DocId(u32::try_from(inner.docs.len()).expect("catalog overflow"));
        inner.docs.push(doc.with_id(id));
        inner.by_uri.insert(uri.to_string(), id);
        id
    }

    /// Builder bound to this catalog's interner; [`Catalog::insert`] the result.
    pub fn builder(&self, uri: &str) -> DocumentBuilder {
        DocumentBuilder::with_interner(uri, Arc::clone(&self.interner))
    }

    /// Resolve a URI to its document id (`fn:doc` semantics).
    pub fn resolve(&self, uri: &str) -> Option<DocId> {
        self.inner.read().by_uri.get(uri).copied()
    }

    /// Fetch a document by id.
    ///
    /// # Panics
    /// Panics on an id not issued by this catalog.
    pub fn doc(&self, id: DocId) -> Arc<Document> {
        Arc::clone(&self.inner.read().docs[id.index()])
    }

    /// Fetch a document by URI.
    pub fn doc_by_uri(&self, uri: &str) -> Option<Arc<Document>> {
        let inner = self.inner.read();
        inner
            .by_uri
            .get(uri)
            .map(|id| Arc::clone(&inner.docs[id.index()]))
    }

    /// Number of loaded documents.
    pub fn len(&self) -> usize {
        self.inner.read().docs.len()
    }

    /// True when no documents are loaded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All loaded document ids, in load order.
    pub fn doc_ids(&self) -> Vec<DocId> {
        (0..self.len() as u32).map(DocId).collect()
    }

    fn parse_with_shared_interner(
        &self,
        uri: &str,
        input: &str,
    ) -> Result<Arc<Document>, ParseError> {
        let mut parser = XmlParser::new(input);
        let mut builder = self.builder(uri);
        let mut pending: Option<String> = None;
        let flush = |builder: &mut DocumentBuilder, pending: &mut Option<String>| {
            if let Some(t) = pending.take() {
                if !t.trim().is_empty() {
                    builder.text(&t);
                }
            }
        };
        while let Some(ev) = parser.next_event()? {
            match ev {
                XmlEvent::Text(t) => match &mut pending {
                    Some(acc) => acc.push_str(&t),
                    None => pending = Some(t),
                },
                XmlEvent::StartElement {
                    name,
                    attributes,
                    self_closing,
                } => {
                    flush(&mut builder, &mut pending);
                    builder.start_element(&name);
                    for (n, v) in &attributes {
                        builder.attribute(n, v);
                    }
                    if self_closing {
                        builder.end_element();
                    }
                }
                XmlEvent::EndElement { .. } => {
                    flush(&mut builder, &mut pending);
                    builder.end_element();
                }
                XmlEvent::Comment(c) => {
                    flush(&mut builder, &mut pending);
                    builder.comment(&c);
                }
                XmlEvent::ProcessingInstruction { target, data } => {
                    flush(&mut builder, &mut pending);
                    builder.processing_instruction(&target, &data);
                }
            }
        }
        Ok(Arc::new(builder.finish(DocId(0))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_and_resolve() {
        let cat = Catalog::new();
        let id = cat.load_str("a.xml", "<a><b/></a>").unwrap();
        assert_eq!(cat.resolve("a.xml"), Some(id));
        assert_eq!(cat.doc(id).uri(), "a.xml");
        assert_eq!(cat.doc(id).id(), id);
    }

    #[test]
    fn documents_share_the_interner() {
        let cat = Catalog::new();
        let a = cat.load_str("a.xml", "<x>shared</x>").unwrap();
        let b = cat.load_str("b.xml", "<y>shared</y>").unwrap();
        let da = cat.doc(a);
        let db = cat.doc(b);
        // The text value "shared" got the same symbol in both documents.
        assert_eq!(da.value(2), db.value(2));
    }

    #[test]
    fn reload_keeps_id() {
        let cat = Catalog::new();
        let id = cat.load_str("a.xml", "<a/>").unwrap();
        let id2 = cat.load_str("a.xml", "<a><b/></a>").unwrap();
        assert_eq!(id, id2);
        assert_eq!(cat.doc(id).node_count(), 3);
        assert_eq!(cat.len(), 1);
    }

    #[test]
    fn unknown_uri_resolves_to_none() {
        let cat = Catalog::new();
        assert_eq!(cat.resolve("missing.xml"), None);
        assert!(cat.doc_by_uri("missing.xml").is_none());
    }

    #[test]
    fn multiple_documents_get_distinct_ids() {
        let cat = Catalog::new();
        let a = cat.load_str("a.xml", "<a/>").unwrap();
        let b = cat.load_str("b.xml", "<b/>").unwrap();
        assert_ne!(a, b);
        assert_eq!(cat.doc_ids(), vec![a, b]);
    }

    #[test]
    fn builder_insert_roundtrip() {
        let cat = Catalog::new();
        let mut b = cat.builder("gen.xml");
        b.start_element("root");
        b.leaf("author", "Codd");
        b.end_element();
        let id = cat.insert("gen.xml", Arc::new(b.finish(DocId(0))));
        let d = cat.doc(id);
        d.check_invariants().unwrap();
        assert_eq!(d.string_value(0), "Codd");
    }
}
