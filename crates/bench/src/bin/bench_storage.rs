//! Snapshot-storage benchmark binary: cold-start latency (XML re-parse vs
//! page-oriented `open_snapshot`) and the buffer-pool sweep at 100%, 50%
//! and 25% frame budgets. Writes the machine-readable `BENCH_storage.json`
//! consumed by CI.
//!
//! ```text
//! cargo run --release -p rox-bench --bin bench_storage -- \
//!     [--smoke] [--out BENCH_storage.json] [--persons 3000] \
//!     [--items 2500] [--auctions 2500] [--repeats 3]
//! ```

use rox_bench::args::Args;
use rox_bench::storage::{self, StorageBenchConfig};

fn main() {
    let args = Args::from_env();
    let mut cfg = if args.has("smoke") {
        StorageBenchConfig::smoke()
    } else {
        StorageBenchConfig::default()
    };
    cfg.xmark.persons = args.get("persons", cfg.xmark.persons);
    cfg.xmark.items = args.get("items", cfg.xmark.items);
    cfg.xmark.auctions = args.get("auctions", cfg.xmark.auctions);
    cfg.repeats = args.get("repeats", cfg.repeats);
    let out_path = args.get("out", "BENCH_storage.json".to_string());

    println!(
        "snapshot storage bench — XMark persons={} items={} auctions={}, pools {:?}",
        cfg.xmark.persons, cfg.xmark.items, cfg.xmark.auctions, cfg.pool_fractions
    );
    let r = storage::run(&cfg);
    print!("{}", storage::render(&r));

    // The compressed format must beat the source text on a real XMark
    // fixture (the v1 raw-column format lost this by ~2.5×), and the
    // half-size pool must serve warm replays partly from its frames.
    assert!(
        r.report.file_bytes < r.xml_bytes as u64,
        "snapshot ({} B) must be smaller than the XML it replaces ({} B)",
        r.report.file_bytes,
        r.xml_bytes
    );
    for p in &r.sweep {
        assert!(
            p.hit_rate > 0.0,
            "pool at {:.0}% of the catalog served zero hits",
            p.fraction * 100.0
        );
    }

    let json = storage::to_json(&cfg, &r);
    std::fs::write(&out_path, &json).expect("write BENCH_storage.json");
    println!("\nwrote {out_path}");
}
