#![warn(missing_docs)]

//! # rox-core — the ROX run-time XQuery optimizer
//!
//! Reproduction of *ROX: Run-time Optimization of XQueries* (Abdel Kader,
//! Boncz, Manegold, van Keulen — SIGMOD 2009). ROX departs from
//! compile-time optimization: it receives an order-independent
//! [Join Graph](rox_joingraph::JoinGraph), then **intertwines** query
//! optimization with evaluation — materializing one path segment at a
//! time and deciding what to execute next by *sampling* candidate
//! operators over the already-materialized intermediates.
//!
//! Modules:
//!
//! * [`engine`](mod@engine) — the long-lived query-serving layer
//!   ([`RoxEngine`]): shared document indexes, the cross-query base-list
//!   cache, and the fingerprint-keyed plan cache that lets repeat queries
//!   skip sampling ([`PlanReuse`]);
//! * [`env`](mod@env) — per-query run-time environment (documents, indices, base
//!   lists), a thin session view over the engine caches;
//! * [`state`] — fully-materialized edge execution over components, routed
//!   through the physical edge-operator kernel (`rox_ops::edgeop`), which
//!   records the chosen [`EdgeOpKind`] per executed edge;
//! * [`estimate`] — cut-off sampled operator execution + `EstimateCard`,
//!   including the parallel candidate-sampling fan-out
//!   ([`estimate_cards`]);
//! * [`chain`] — chain sampling (Algorithm 2);
//! * [`optimizer`] — the run-time optimizer (Algorithm 1);
//! * [`plan`] — explicit plan replay ("pure plan", no sampling);
//! * [`guard`] — guarded plan replay: sampled drift spot checks over a
//!   cached plan, with mid-query demotion back into Algorithm 1 when the
//!   recorded cardinalities no longer match the data;
//! * [`enumerate`] — join-order enumeration + canonical SJ/JS/S_J
//!   placements + the classical smallest-input-first baseline (§4.2);
//! * [`naive`] — an independent nested-loop oracle for differential tests.
//!
//! ```
//! use std::sync::Arc;
//! use rox_xmldb::Catalog;
//!
//! let catalog = Arc::new(Catalog::new());
//! catalog.load_str("d.xml", "<site><auction><bidder/></auction></site>").unwrap();
//! let graph = rox_joingraph::compile_query(
//!     r#"for $a in doc("d.xml")//auction, $b in $a/bidder return $b"#,
//! ).unwrap();
//! let report = rox_core::run_rox(catalog, &graph, Default::default()).unwrap();
//! assert_eq!(report.output.len(), 1);
//! ```

pub mod chain;
pub mod engine;
pub mod enumerate;
pub mod env;
pub mod estimate;
pub mod explain;
pub mod guard;
pub mod naive;
pub mod optimizer;
pub mod plan;
pub mod state;

pub use chain::{ChainTrace, PathSnapshot};
pub use engine::{
    BaseListCache, CachedPlan, EngineRun, EngineStats, EngineTicket, PlanReuse, RoxEngine, RunMode,
    ServeError, StorageEventSink, TicketOutcome,
};
pub use enumerate::{
    analyze_star, classical_join_order, enumerate_join_orders, plan_edges, JoinOrder, Member,
    Placement, StarQuery,
};
pub use env::{EnvError, RoxEnv};
pub use estimate::estimate_cards;
pub use guard::{CheckKind, EdgeExpectation, GuardVerdict, SpotCheck};
pub use naive::naive_evaluate;
pub use optimizer::{run_rox, run_rox_with_env, RoxOptions, RoxReport};
pub use plan::{
    run_plan, run_plan_parallel, run_plan_with_env, run_plan_with_env_parallel, validate_plan,
    PlanError, PlanRun,
};
pub use rox_ops::EdgeOpKind;
pub use rox_par::Parallelism;
pub use rox_storage::{RecoveryReport, WalStats};
pub use state::{EdgeExec, EvalState};
