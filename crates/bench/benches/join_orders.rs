//! Figure 5 benchmark: best vs worst join orders and the full 18-order
//! sweep on VLDB/ICDE/ICIP/ADBIS.

use criterion::{criterion_group, criterion_main, Criterion};
use rox_bench::fig5::{run, Fig5Config};
use rox_core::{
    analyze_star, enumerate_join_orders, plan_edges, run_plan_with_env, Placement, RoxEnv,
};
use rox_datagen::{dblp_query, venue_index};
use std::hint::black_box;
use std::sync::Arc;

fn bench_sweep(c: &mut Criterion) {
    let cfg = Fig5Config {
        scale: 1,
        size_factor: 0.05,
        seed: 9,
    };
    c.bench_function("fig5/full_sweep", |b| b.iter(|| black_box(run(&cfg))));
}

fn bench_best_vs_worst(c: &mut Criterion) {
    let setup = rox_bench::dblp_catalog(1, 0.1, 9);
    let combo = [
        venue_index("VLDB"),
        venue_index("ICDE"),
        venue_index("ICIP"),
        venue_index("ADBIS"),
    ];
    let graph = rox_joingraph::compile_query(&dblp_query(&combo)).unwrap();
    let star = analyze_star(&graph).unwrap();
    let env = RoxEnv::new(Arc::clone(&setup.catalog), &graph).unwrap();
    // Identify best/worst once.
    let mut measured: Vec<(u64, Vec<rox_joingraph::EdgeId>)> = enumerate_join_orders(4)
        .iter()
        .map(|o| {
            let edges = plan_edges(&graph, &star, o, Placement::SJ);
            let r = run_plan_with_env(&env, &graph, &edges).unwrap();
            (r.cumulative_join_rows, edges)
        })
        .collect();
    measured.sort_by_key(|(rows, _)| *rows);
    let best = measured.first().unwrap().1.clone();
    let worst = measured.last().unwrap().1.clone();
    let mut group = c.benchmark_group("fig5");
    group.bench_function("best_order", |b| {
        b.iter(|| black_box(run_plan_with_env(&env, &graph, &best).unwrap()))
    });
    group.bench_function("worst_order", |b| {
        b.iter(|| black_box(run_plan_with_env(&env, &graph, &worst).unwrap()))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_best_vs_worst, bench_sweep
}
criterion_main!(benches);
