//! The plan tail (§2.1): projection, duplicate elimination and the
//! numbering/sort that restore XQuery's order and distinctness semantics
//! on top of the order-independent Join Graph result.

use crate::cost::Cost;
use crate::relation::{Relation, VarId};

/// The tail of a plan: `π_keep ∘ τ_sort ∘ δ ∘ π_dedup` as in Fig. 1.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Tail {
    /// Variables the distinct step works on (`π` before `δ`).
    pub dedup_vars: Vec<VarId>,
    /// Sort order restoring document order of the `for` variables (`τ`).
    pub sort_vars: Vec<VarId>,
    /// Final projection (the `return` expression's variable).
    pub output_vars: Vec<VarId>,
}

impl Tail {
    /// Apply the tail to a fully joined relation.
    pub fn apply(&self, joined: &Relation, cost: &mut Cost) -> Relation {
        cost.charge_in(joined.len());
        let mut r = joined.project(&self.dedup_vars);
        r.distinct();
        r.sort_by(&self.sort_vars);
        let out = r.project(&self.output_vars);
        cost.charge_out(out.len());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rox_xmldb::catalog::DocId;

    #[test]
    fn tail_dedups_sorts_and_projects() {
        // Fully joined relation over vars (1, 2) with duplicates and
        // shuffled order.
        let mut r = Relation::empty(vec![1, 2], vec![DocId(0), DocId(0)]);
        r.push_row(&[5, 30]);
        r.push_row(&[3, 20]);
        r.push_row(&[5, 30]); // duplicate pair
        r.push_row(&[5, 10]);
        let tail = Tail {
            dedup_vars: vec![1, 2],
            sort_vars: vec![1, 2],
            output_vars: vec![1],
        };
        let mut cost = Cost::new();
        let out = tail.apply(&r, &mut cost);
        // (3,20), (5,10), (5,30): output column of var 1.
        assert_eq!(out.col(1), &[3, 5, 5]);
    }

    #[test]
    fn tail_with_single_variable() {
        let mut r = Relation::empty(vec![7], vec![DocId(0)]);
        r.push_row(&[2]);
        r.push_row(&[1]);
        r.push_row(&[2]);
        let tail = Tail {
            dedup_vars: vec![7],
            sort_vars: vec![7],
            output_vars: vec![7],
        };
        let out = tail.apply(&r, &mut Cost::new());
        assert_eq!(out.col(7), &[1, 2]);
    }
}
